// Package dataflow assembles the two data-flow architectures of §4.2 of
// the paper and measures when run data becomes available at the public
// server.
//
// Architecture 1 (Figure 4): the simulation and the product-generating
// master process both execute at the compute node; rsync incrementally
// copies model outputs AND data products to the server.
//
// Architecture 2 (Figure 5): the simulation executes at the compute node
// and rsync copies only the model outputs to the server; the master
// process runs at the server, generating products from the delivered
// copies and exploiting the server's otherwise idle CPU.
package dataflow

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
	"repro/internal/workflow"
)

// Architecture selects a data-flow architecture.
type Architecture int

// The two architectures evaluated in the paper.
const (
	Architecture1 Architecture = 1
	Architecture2 Architecture = 2
)

// watchdogDeadline bounds every architecture's virtual runtime: a
// dataflow that has not drained after 90 virtual days is wedged, and the
// watchdog panics rather than spinning the event loop forever.
const watchdogDeadline = 90 * 86400.0

// String names the architecture as in the paper.
func (a Architecture) String() string {
	switch a {
	case Architecture1:
		return "Architecture 1 (model and data products at nodes)"
	case Architecture2:
		return "Architecture 2 (data products at server)"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Params configures an architecture experiment. Zero fields take the
// defaults of the paper's §4.2 testbed: a 2.80 GHz single-CPU client
// (reference speed 1.0), a 2.60 GHz single-CPU server (0.93), a 100 Mb/s
// LAN, rsync every 5 minutes, and the standard run execution parameters.
type Params struct {
	Spec *forecast.Spec

	ClientCPUs  int
	ClientSpeed float64
	ServerCPUs  int
	ServerSpeed float64

	Bandwidth     float64 // link bytes/second
	RsyncInterval float64 // seconds between rsync scans

	Increments int
	Workers    int
	Poll       float64

	// Watch lists run-relative data series to sample, as in Figures 6/7.
	// Entries name either model-output files or product directories; the
	// special name "process" watches the master process's directory.
	// Nil selects the paper's five series.
	Watch []string

	// SampleInterval is the spacing of series samples (default 60 s).
	SampleInterval float64

	// Telemetry, when non-nil, receives link/workflow metrics and an
	// experiment span tree (experiment → simulation/product/transfer).
	Telemetry *telemetry.Telemetry
}

// DefaultWatch is the five series plotted in Figures 6 and 7.
var DefaultWatch = []string{
	"1_salt.63",
	"2_salt.63",
	"isosal_far_surface",
	"isosal_near_surface",
	"process",
}

func (p *Params) fillDefaults() {
	if p.Spec == nil {
		p.Spec = forecast.DataflowForecast()
	}
	if p.ClientCPUs == 0 {
		p.ClientCPUs = 1
	}
	if p.ClientSpeed == 0 {
		p.ClientSpeed = 1.0
	}
	if p.ServerCPUs == 0 {
		p.ServerCPUs = 1
	}
	if p.ServerSpeed == 0 {
		p.ServerSpeed = 2.60 / 2.80
	}
	if p.Bandwidth == 0 {
		p.Bandwidth = 12.5e6
	}
	if p.RsyncInterval == 0 {
		p.RsyncInterval = 300
	}
	if p.Increments == 0 {
		p.Increments = workflow.DefaultIncrements
	}
	if p.Workers == 0 {
		p.Workers = workflow.DefaultWorkers
	}
	if p.Poll == 0 {
		p.Poll = workflow.DefaultPoll
	}
	if p.Watch == nil {
		p.Watch = DefaultWatch
	}
	if p.SampleInterval == 0 {
		p.SampleInterval = 60
	}
}

// Series is the fraction of one watched path's final data present at the
// server over time.
type Series struct {
	Name     string
	Times    []float64
	Fraction []float64
}

// Result reports one architecture run.
type Result struct {
	Architecture Architecture
	// EndToEnd is the time until all run data (model outputs, data
	// products, process files) is resident at the server.
	EndToEnd float64
	// SimWalltime is when the simulation itself completed.
	SimWalltime float64
	// RunWalltime is when the product run (sim + all products) completed.
	RunWalltime float64
	// BytesOverLink is the total bytes rsync moved to the server.
	BytesOverLink float64
	// TotalBytes is the total bytes of run data (outputs + products +
	// process files).
	TotalBytes float64
	// Series are the sampled fraction-at-server curves.
	Series []Series
}

// BandwidthSaving returns the fraction of run data NOT moved over the
// link (0 for Architecture 1, ≈ the product share for Architecture 2).
func (r Result) BandwidthSaving() float64 {
	if r.TotalBytes <= 0 {
		return 0
	}
	s := 1 - r.BytesOverLink/r.TotalBytes
	if s < 0 {
		return 0
	}
	return s
}

// Run executes the experiment for the chosen architecture.
func Run(arch Architecture, p Params) Result {
	p.fillDefaults()
	if err := p.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("dataflow: %v", err))
	}

	eng := sim.NewEngine()
	cl := cluster.New(eng)
	client := cl.AddNode("client", p.ClientCPUs, p.ClientSpeed)
	server := cl.AddNode("server", p.ServerCPUs, p.ServerSpeed)
	clientFS := vfs.New(eng.Now)
	serverFS := vfs.New(eng.Now)
	link := netsim.NewLink(eng, "lan", p.Bandwidth)

	tel := p.Telemetry
	tel.SetClock(eng.Now)
	eng.Instrument(tel.Registry())
	link.Instrument(tel)
	var expSpan *telemetry.Span
	if tel != nil {
		expSpan = tel.Trace().Begin("experiment",
			fmt.Sprintf("arch%d:%s", int(arch), p.Spec.Name), "dataflow", nil)
	}

	dir := "/runs/" + p.Spec.Name + "/day1"
	cfg := workflow.Config{
		Spec:       p.Spec,
		Dir:        dir,
		SimNode:    client,
		SimFS:      clientFS,
		Increments: p.Increments,
		Workers:    p.Workers,
		Poll:       p.Poll,
		Telemetry:  tel,
		Span:       expSpan,
	}
	switch arch {
	case Architecture1:
		cfg.ProductNode = client
		cfg.ProductFS = clientFS
	case Architecture2:
		cfg.ProductNode = server
		cfg.ProductFS = serverFS
	default:
		panic(fmt.Sprintf("dataflow: unknown architecture %d", arch))
	}

	run := workflow.Start(eng, cfg)

	// rsync roots: Architecture 1 ships outputs, products, and the
	// process directory; Architecture 2 ships only the model outputs.
	roots := []string{run.OutputsDir()}
	if arch == Architecture1 {
		roots = append(roots, run.ProductsDir(), run.ProcessDir())
	}
	var lastDelivery float64
	rs := netsim.NewRsync(eng, clientFS, serverFS, link, p.RsyncInterval, roots,
		func(t float64, _ string, _ int64) { lastDelivery = t })
	rs.Start()

	// Sample the watched series at the server.
	watchPaths := resolveWatch(run, p.Watch)
	samples := make(map[string][]sample, len(watchPaths))
	sched := eng.Scope("dataflow")
	var sampler func()
	samplerDone := false
	sampler = func() {
		for name, path := range watchPaths {
			samples[name] = append(samples[name], sample{eng.Now(), serverFS.Size(path)})
		}
		if !samplerDone {
			sched.After(p.SampleInterval, sampler)
		}
	}
	sched.After(p.SampleInterval, sampler)

	// Watchdog: once the run is finished and rsync has delivered
	// everything, stop the periodic agents so the event queue drains.
	var watchdog func()
	watchdog = func() {
		if run.Finished() && rs.Synced() {
			samplerDone = true
			rs.Stop()
			sampler() // final sample at the exact end
			return
		}
		if eng.Now() > watchdogDeadline {
			panic(fmt.Sprintf("dataflow: %v did not complete within %v virtual seconds", arch, watchdogDeadline))
		}
		sched.After(p.SampleInterval, watchdog)
	}
	sched.After(p.SampleInterval, watchdog)

	eng.Run()

	if !run.Finished() {
		panic("dataflow: run did not finish (event queue drained early)")
	}

	// Total run data generated: everything at the client plus, for
	// Architecture 2, the products and process files written directly at
	// the server (the server's rsync'd copies are not new data).
	totalBytes := float64(clientFS.TreeSize(dir))
	if arch == Architecture2 {
		totalBytes += float64(serverFS.TreeSize(run.ProductsDir()) + serverFS.TreeSize(run.ProcessDir()))
	}
	res := Result{
		Architecture:  arch,
		SimWalltime:   run.SimFinishedAt() - run.Started(),
		RunWalltime:   run.Walltime(),
		BytesOverLink: link.BytesMoved(),
		TotalBytes:    totalBytes,
	}
	// All data at server: the later of the last rsync delivery and (for
	// Architecture 2) the last product written directly at the server.
	res.EndToEnd = lastDelivery
	if arch == Architecture2 && run.FinishedAt() > res.EndToEnd {
		res.EndToEnd = run.FinishedAt()
	}

	if reg := tel.Registry(); reg != nil {
		al := telemetry.Labels{"arch": fmt.Sprintf("%d", int(arch))}
		reg.Describe("dataflow_bytes_over_link", "Bytes rsync moved to the server, by architecture.")
		reg.Describe("dataflow_total_bytes", "Total run data generated, by architecture.")
		reg.Describe("dataflow_end_to_end_seconds", "Time until all run data is resident at the server, by architecture.")
		reg.Gauge("dataflow_bytes_over_link", al).Set(res.BytesOverLink)
		reg.Gauge("dataflow_total_bytes", al).Set(res.TotalBytes)
		reg.Gauge("dataflow_end_to_end_seconds", al).Set(res.EndToEnd)
	}
	expSpan.EndSpan()

	// Normalize series by their final sizes.
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		final := ss[len(ss)-1].size
		s := Series{Name: name}
		for _, pt := range ss {
			frac := 0.0
			if final > 0 {
				frac = float64(pt.size) / float64(final)
			}
			s.Times = append(s.Times, pt.t)
			s.Fraction = append(s.Fraction, frac)
		}
		res.Series = append(res.Series, s)
	}
	return res
}

type sample struct {
	t    float64
	size int64
}

// resolveWatch maps watch names to server-filesystem paths.
func resolveWatch(run *workflow.Run, watch []string) map[string]string {
	paths := make(map[string]string, len(watch))
	for _, name := range watch {
		switch {
		case name == "process":
			paths[name] = run.ProcessDir() + "/master.out"
		case isOutput(run, name):
			paths[name] = run.OutputPath(name)
		default:
			paths[name] = run.ProductPath(name)
		}
	}
	return paths
}

func isOutput(run *workflow.Run, name string) bool {
	_, ok := run.Spec().Output(name)
	return ok
}

// TimeToFraction returns the first sampled time at which the series
// reaches at least the given fraction, or NaN if it never does.
func (s Series) TimeToFraction(frac float64) float64 {
	for i, f := range s.Fraction {
		if f >= frac {
			return s.Times[i]
		}
	}
	return math.NaN()
}
