package dataflow

import (
	"math"
	"testing"
)

func TestArchitecture2BeatsArchitecture1(t *testing.T) {
	// The paper's headline §4.2 result: ≈18,000 s end-to-end at a single
	// node versus ≈11,000 s with products generated at the server.
	r1 := Run(Architecture1, Params{})
	r2 := Run(Architecture2, Params{})
	if r2.EndToEnd >= r1.EndToEnd {
		t.Fatalf("Architecture 2 (%v s) not faster than Architecture 1 (%v s)", r2.EndToEnd, r1.EndToEnd)
	}
	// Magnitudes: Arch 1 in [15000, 21000], Arch 2 in [9500, 13000].
	if r1.EndToEnd < 15000 || r1.EndToEnd > 21000 {
		t.Errorf("Architecture 1 end-to-end = %v, want ≈18000", r1.EndToEnd)
	}
	if r2.EndToEnd < 9500 || r2.EndToEnd > 13000 {
		t.Errorf("Architecture 2 end-to-end = %v, want ≈11000", r2.EndToEnd)
	}
	// Speedup factor roughly 18/11 ≈ 1.6.
	ratio := r1.EndToEnd / r2.EndToEnd
	if ratio < 1.3 || ratio > 2.1 {
		t.Errorf("speedup = %v, want ≈1.6", ratio)
	}
}

func TestArchitecture1ContentionStretchesSim(t *testing.T) {
	r1 := Run(Architecture1, Params{})
	r2 := Run(Architecture2, Params{})
	// Products steal cycles from the simulation in Architecture 1.
	if r1.SimWalltime <= r2.SimWalltime {
		t.Fatalf("Arch1 sim (%v) not slower than Arch2 sim (%v)", r1.SimWalltime, r2.SimWalltime)
	}
}

func TestArchitecture2SavesBandwidth(t *testing.T) {
	// §4.2: data products account for as much as 20% of run data, so
	// Architecture 2 moves correspondingly fewer bytes.
	r1 := Run(Architecture1, Params{})
	r2 := Run(Architecture2, Params{})
	if r2.BytesOverLink >= r1.BytesOverLink {
		t.Fatalf("Arch2 moved %v bytes, Arch1 %v", r2.BytesOverLink, r1.BytesOverLink)
	}
	saving := r2.BandwidthSaving()
	if saving < 0.10 || saving > 0.30 {
		t.Errorf("bandwidth saving = %v, want ≈0.20", saving)
	}
	if r1.BandwidthSaving() > 0.02 {
		t.Errorf("Arch1 bandwidth saving = %v, want ≈0", r1.BandwidthSaving())
	}
}

func TestArchitecture1FinalOutputsAndProductsArriveTogether(t *testing.T) {
	// Paper: "in Figure 6 the final model outputs and data products
	// arrive at the server at around the same time".
	r1 := Run(Architecture1, Params{})
	tOut := seriesEnd(t, r1, "2_salt.63")
	tProd := seriesEnd(t, r1, "isosal_far_surface")
	if math.Abs(tOut-tProd) > 0.10*r1.EndToEnd {
		t.Errorf("Arch1 outputs done at %v, products at %v; want close", tOut, tProd)
	}
}

func TestArchitecture2FinalProductsSlightlyLater(t *testing.T) {
	// Paper: "in Figure 7 the final data products appear slightly later"
	// than the model outputs.
	r2 := Run(Architecture2, Params{})
	tOut := seriesEnd(t, r2, "2_salt.63")
	tProd := seriesEnd(t, r2, "isosal_far_surface")
	if tProd <= tOut {
		t.Errorf("Arch2 products done at %v, not after outputs at %v", tProd, tOut)
	}
	// "Slightly": within ~20% of the total.
	if tProd-tOut > 0.25*r2.EndToEnd {
		t.Errorf("Arch2 product lag %v too large for end-to-end %v", tProd-tOut, r2.EndToEnd)
	}
}

func seriesEnd(t *testing.T, r Result, name string) float64 {
	t.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			v := s.TimeToFraction(0.999)
			if math.IsNaN(v) {
				t.Fatalf("series %s never completed", name)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", name)
	return 0
}

func TestSeriesAreMonotonicAndNormalized(t *testing.T) {
	for _, arch := range []Architecture{Architecture1, Architecture2} {
		r := Run(arch, Params{})
		if len(r.Series) != len(DefaultWatch) {
			t.Fatalf("%v: %d series, want %d", arch, len(r.Series), len(DefaultWatch))
		}
		for _, s := range r.Series {
			if len(s.Times) == 0 {
				t.Fatalf("%v/%s: empty series", arch, s.Name)
			}
			for i := 1; i < len(s.Fraction); i++ {
				if s.Fraction[i] < s.Fraction[i-1]-1e-9 {
					t.Fatalf("%v/%s: fraction decreased at %d", arch, s.Name, i)
				}
				if s.Times[i] < s.Times[i-1] {
					t.Fatalf("%v/%s: time decreased at %d", arch, s.Name, i)
				}
			}
			last := s.Fraction[len(s.Fraction)-1]
			if math.Abs(last-1) > 1e-9 {
				t.Fatalf("%v/%s: final fraction = %v, want 1", arch, s.Name, last)
			}
		}
	}
}

func TestFasterLinkShrinksArch1Gap(t *testing.T) {
	// With a much faster link, Architecture 1's end-to-end approaches its
	// run walltime (transfer lag vanishes); the architecture gap remains
	// because it is CPU contention, not bandwidth.
	fast := Run(Architecture1, Params{Bandwidth: 1e9, RsyncInterval: 30})
	if fast.EndToEnd-fast.RunWalltime > 120 {
		t.Errorf("fast-link Arch1 lag = %v, want small", fast.EndToEnd-fast.RunWalltime)
	}
}

func TestTwoCPUClientRemovesMostContention(t *testing.T) {
	// Ablation: with two client CPUs and one product worker, the
	// simulation and products rarely exceed the CPU count, so
	// Architecture 1's penalty mostly disappears.
	one := Run(Architecture1, Params{})
	two := Run(Architecture1, Params{ClientCPUs: 2})
	if two.SimWalltime >= one.SimWalltime {
		t.Fatalf("2-CPU sim walltime %v not below 1-CPU %v", two.SimWalltime, one.SimWalltime)
	}
	// With two CPUs the residual penalty is just the co-location
	// interference factor, not CPU contention.
	if two.SimWalltime > 1.05*1.25*10700 {
		t.Errorf("2-CPU Arch1 sim walltime = %v, want ≈ slowdown × isolated ≈13350", two.SimWalltime)
	}
}

func TestTimeToFraction(t *testing.T) {
	s := Series{Times: []float64{0, 10, 20}, Fraction: []float64{0, 0.5, 1}}
	if got := s.TimeToFraction(0.4); got != 10 {
		t.Fatalf("TimeToFraction(0.4) = %v, want 10", got)
	}
	if got := s.TimeToFraction(1.0); got != 20 {
		t.Fatalf("TimeToFraction(1.0) = %v, want 20", got)
	}
	if !math.IsNaN((Series{Times: []float64{0}, Fraction: []float64{0.2}}).TimeToFraction(0.5)) {
		t.Fatal("TimeToFraction should be NaN when never reached")
	}
}

func TestArchitectureString(t *testing.T) {
	if Architecture1.String() == "" || Architecture2.String() == "" || Architecture(9).String() == "" {
		t.Fatal("empty architecture name")
	}
}

func TestUnknownArchitecturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown architecture did not panic")
		}
	}()
	Run(Architecture(7), Params{})
}
