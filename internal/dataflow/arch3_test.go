package dataflow

import (
	"testing"

	"repro/internal/forecast"
)

func TestPartitionedSingleNodeMatchesArchitecture2Shape(t *testing.T) {
	// k=1 is Architecture 2 plus an extra product hop to the server: the
	// run walltime matches Arch 2 closely; end-to-end trails by the
	// product transfer lag.
	a2 := Run(Architecture2, Params{})
	a3 := RunPartitioned(Params{}, 1)
	if rel := (a3.RunWalltime - a2.RunWalltime) / a2.RunWalltime; rel < -0.02 || rel > 0.10 {
		t.Fatalf("k=1 run walltime %v vs Arch2 %v", a3.RunWalltime, a2.RunWalltime)
	}
	if a3.EndToEnd < a2.EndToEnd {
		t.Fatalf("k=1 end-to-end %v should not beat Arch2 %v (extra hop)", a3.EndToEnd, a2.EndToEnd)
	}
}

func TestPartitioningTodayBringsLittleBenefit(t *testing.T) {
	// §2.2: "in the current factory implementation, there is generally
	// little benefit to generating data products for a single forecast
	// concurrently at multiple nodes, due to high data transfer overhead".
	a2 := Run(Architecture2, Params{})
	a3 := RunPartitioned(Params{}, 4)
	// No meaningful end-to-end win at today's product load...
	if a2.EndToEnd-a3.EndToEnd > 0.05*a2.EndToEnd {
		t.Fatalf("partitioning won big today (%v vs %v); paper says it should not", a3.EndToEnd, a2.EndToEnd)
	}
	// ...and the transfer overhead multiplies: outputs ship to every
	// worker.
	if a3.BytesOverLink < 3*a2.BytesOverLink {
		t.Fatalf("k=4 moved %v bytes, want ≫ Arch2's %v", a3.BytesOverLink, a2.BytesOverLink)
	}
}

func TestPartitioningWinsWhenProductLoadGrows(t *testing.T) {
	// The regime the paper expects to revisit: with 4× the product load,
	// one server saturates while four workers keep up.
	heavy := forecast.ReplicateProducts(forecast.DataflowForecast(), 4)
	one := Run(Architecture2, Params{Spec: heavy, Workers: 4})
	four := RunPartitioned(Params{Spec: heavy, Workers: 4}, 4)
	if four.RunWalltime >= one.RunWalltime {
		t.Fatalf("partitioned heavy load %v not faster than single server %v",
			four.RunWalltime, one.RunWalltime)
	}
}

func TestPartitionKeepsDependencyGroupsTogether(t *testing.T) {
	spec := forecast.DataflowForecast() // includes animations with deps
	parts := partitionProducts(spec.Products, 3)
	where := map[string]int{}
	total := 0
	for i, part := range parts {
		for _, p := range part {
			where[p.Name] = i
			total++
		}
	}
	if total != len(spec.Products) {
		t.Fatalf("partitioned %d of %d products", total, len(spec.Products))
	}
	for _, p := range spec.Products {
		for _, dep := range p.DependsOn {
			if where[p.Name] != where[dep] {
				t.Fatalf("product %s (part %d) split from dependency %s (part %d)",
					p.Name, where[p.Name], dep, where[dep])
			}
		}
	}
}

func TestPartitionBalancesLoad(t *testing.T) {
	spec := forecast.ReplicateProducts(forecast.DataflowForecast(), 2)
	parts := partitionProducts(spec.Products, 4)
	counts := make([]int, len(parts))
	for i, part := range parts {
		counts[i] = len(part)
	}
	for _, c := range counts {
		if c == 0 {
			t.Fatalf("empty partition: %v", counts)
		}
	}
}

func TestPartitionedClampsK(t *testing.T) {
	res := RunPartitioned(Params{}, 0) // clamped to 1
	if res.EndToEnd <= 0 {
		t.Fatal("k=0 run failed")
	}
}
