package dataflow

import "math"

// Lead quantifies the paper's incremental-delivery observation: "even
// though a forecast for the current day might not finish until, say, 10am
// in the morning, the portion of the forecast completed by 7am might
// cover the time period up until noon." If a fraction f of a forecast
// covering horizon H (typically two days) is at the server at wall-clock
// time t, the available data reaches f·H into the forecast period, so the
// user's lead over real time is f·H − t seconds. Positive lead means the
// server already holds predictions for times that have not happened yet.
//
// LeadCurve converts a fraction-at-server series into a lead-time series.
func LeadCurve(s Series, horizon float64) Series {
	out := Series{Name: s.Name + " lead"}
	for i := range s.Times {
		out.Times = append(out.Times, s.Times[i])
		out.Fraction = append(out.Fraction, s.Fraction[i]*horizon-s.Times[i])
	}
	return out
}

// MinLead returns the worst (smallest) lead over the series once delivery
// has begun — the closest the factory comes to publishing stale
// predictions. Samples before the first byte arrives are skipped: until
// then users consult the previous day's forecast, which still covers the
// near term. The fishing-boat captain cares about exactly this number.
func MinLead(s Series, horizon float64) float64 {
	min := math.Inf(1)
	for i := range s.Times {
		if s.Fraction[i] <= 0 {
			continue
		}
		if lead := s.Fraction[i]*horizon - s.Times[i]; lead < min {
			min = lead
		}
	}
	return min
}

// DefaultForecastHorizon is the two-day forecast period in seconds.
const DefaultForecastHorizon = 2 * 86400.0
