// Package integration exercises the whole reproduction end to end: run a
// campaign on the simulator, harvest its logs, load the statistics
// database, estimate tomorrow from history, build a schedule, and then
// actually simulate tomorrow to confirm the ForeMan predictions — the
// full loop a CORIE operator would drive.
package integration

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/stats"
	"repro/internal/statsdb"
)

// plantSpecs is a small factory: five forecasts on three nodes.
func plantSpecs() []*forecast.Spec {
	mk := func(name string, ts, sides, products, prio int, startHour float64) *forecast.Spec {
		s := forecast.NewSpec(name, name+"-region", ts, sides, products)
		s.StartOffset = startHour * 3600
		s.Priority = prio
		return s
	}
	return []*forecast.Spec{
		mk("alpha", 5760, 24000, 6, 8, 3),
		mk("bravo", 5760, 20000, 6, 7, 2),
		mk("charlie", 4320, 18000, 4, 5, 3),
		mk("delta", 2880, 16000, 4, 4, 4),
		mk("echo", 2880, 12000, 4, 2, 4),
	}
}

func plantNodes() []factory.NodeSpec {
	return []factory.NodeSpec{
		{Name: "n1", CPUs: 2, Speed: 1.0},
		{Name: "n2", CPUs: 2, Speed: 1.0},
		{Name: "n3", CPUs: 2, Speed: 1.2},
	}
}

func coreNodes() []core.NodeInfo {
	var out []core.NodeInfo
	for _, n := range plantNodes() {
		out = append(out, core.NodeInfo{Name: n.Name, CPUs: n.CPUs, Speed: n.Speed})
	}
	return out
}

// runCampaign executes days of history with the given assignment.
func runCampaign(t *testing.T, days int, assign map[string]string) (*factory.Campaign, []factory.RunResult) {
	t.Helper()
	specs := plantSpecs()
	var assignments []factory.Assignment
	for _, s := range specs {
		assignments = append(assignments, factory.Assignment{Spec: s, Node: assign[s.Name]})
	}
	c, err := factory.New(factory.Config{
		Days:      days,
		Nodes:     plantNodes(),
		Forecasts: assignments,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, c.Run()
}

func defaultAssign() map[string]string {
	return map[string]string{
		"alpha": "n1", "bravo": "n2", "charlie": "n3", "delta": "n1", "echo": "n2",
	}
}

func TestFullLoopPredictionsMatchSimulation(t *testing.T) {
	// Day 1-3: accumulate history.
	hist, _ := runCampaign(t, 3, defaultAssign())
	records, err := logs.Crawl(hist.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 15 {
		t.Fatalf("harvested %d records, want 15", len(records))
	}

	// Load the statistics database and sanity-check it with SQL.
	db := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db, records); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT forecast, COUNT(*) FROM runs GROUP BY forecast ORDER BY forecast")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("grouped rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].Int() != 3 {
			t.Fatalf("forecast %s has %d runs, want 3", row[0].Str(), row[1].Int())
		}
	}

	// Plan day 4 with ForeMan from history.
	nodes := coreNodes()
	estimator := core.NewEstimator(records, nodes)
	runs := estimator.PlanRuns(plantSpecs(), nodes)
	schedule, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.StayPut})
	if err != nil {
		t.Fatal(err)
	}
	if !schedule.Feasible() {
		t.Fatalf("plan infeasible: late %v", schedule.Late())
	}

	// Execute day 4 with the stay-put assignment and compare actual
	// completions against ForeMan's predictions.
	_, results := runCampaign(t, 1, defaultAssign())
	for _, r := range results {
		if !r.Finished {
			t.Fatalf("run %s did not finish", r.Forecast)
		}
		predicted := schedule.Prediction.Completion[r.Forecast]
		actual := r.End // day-4 campaign time == seconds after midnight
		rel := math.Abs(predicted-actual) / actual
		if rel > 0.02 {
			t.Errorf("%s: predicted completion %v, actual %v (%.1f%% off)",
				r.Forecast, predicted, actual, 100*rel)
		}
	}
}

func TestFullLoopEstimatesTrackTimestepChange(t *testing.T) {
	// History at 5760 steps, then the operator doubles alpha's timesteps.
	hist, _ := runCampaign(t, 2, defaultAssign())
	records, err := logs.Crawl(hist.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	nodes := coreNodes()
	estimator := core.NewEstimator(records, nodes)

	specs := plantSpecs()
	specs[0].Timesteps *= 2
	runs := estimator.PlanRuns(specs, nodes)
	var alpha, bravo core.Run
	for _, r := range runs {
		switch r.Name {
		case "alpha":
			alpha = r
		case "bravo":
			bravo = r
		}
	}
	// Alpha's estimated work doubled relative to its per-step history;
	// bravo's did not change.
	histAlpha := estimator.History("alpha")
	baseWork := histAlpha[len(histAlpha)-1].Walltime // ran on speed-1.0 n1
	if rel := math.Abs(alpha.Work-2*baseWork) / (2 * baseWork); rel > 0.01 {
		t.Errorf("alpha estimated work %v, want ≈%v", alpha.Work, 2*baseWork)
	}
	histBravo := estimator.History("bravo")
	if rel := math.Abs(bravo.Work-histBravo[len(histBravo)-1].Walltime) / bravo.Work; rel > 0.01 {
		t.Errorf("bravo estimated work %v, want ≈ its history", bravo.Work)
	}
}

func TestFullLoopFailureRescheduleStaysFeasible(t *testing.T) {
	hist, _ := runCampaign(t, 2, defaultAssign())
	records, err := logs.Crawl(hist.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	nodes := coreNodes()
	estimator := core.NewEstimator(records, nodes)
	runs := estimator.PlanRuns(plantSpecs(), nodes)
	schedule, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.StayPut})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.RescheduleAfterFailure(schedule, "n1", core.MinimalMove, core.WorstFitDecreasing)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Feasible() {
		t.Fatalf("post-failure plan infeasible: %v", after.Late())
	}
	// Execute the rescheduled day and confirm the runs really finish in
	// time on the surviving nodes.
	assign := defaultAssign()
	for run, node := range after.Plan.Assign {
		assign[run] = node
	}
	specs := plantSpecs()
	var assignments []factory.Assignment
	for _, s := range specs {
		assignments = append(assignments, factory.Assignment{Spec: s, Node: assign[s.Name]})
	}
	c, err := factory.New(factory.Config{
		Days:      1,
		Nodes:     plantNodes(),
		Forecasts: assignments,
		Events:    []factory.Event{factory.FailNode{Day: 1, Node: "n1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Run() {
		if !r.Finished {
			t.Fatalf("run %s did not finish after reschedule", r.Forecast)
		}
		if r.End > 86400 {
			t.Errorf("run %s finished at %v, past its deadline", r.Forecast, r.End)
		}
	}
}

func TestFullLoopStatisticsLinearityAcrossForecasts(t *testing.T) {
	// Across the plant, walltime per (timesteps × sides) is constant up
	// to the co-location factor — the statistics the estimator relies on.
	hist, _ := runCampaign(t, 1, defaultAssign())
	records, err := logs.Crawl(hist.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var x, y []float64
	speeds := map[string]float64{"n1": 1.0, "n2": 1.0, "n3": 1.2}
	for _, r := range records {
		x = append(x, float64(r.Timesteps)*float64(r.MeshSides))
		y = append(y, r.Walltime*speeds[r.Node])
	}
	fit, err := stats.FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R² = %v; normalized walltime should be linear in steps×sides", fit.R2)
	}
}
