package forensics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// benchReplay drives a traced, sampled campaign at forensic scale:
// nodes×days runs (one per node per day, runsWanted total), each a run
// span wrapping a chained-increment simulation on its node, with the
// usage sampler observing the whole cluster. When analyze is true a full
// forensics pass (Analyze over the trace + timeline) follows the replay —
// the delta against analyze=false is what the 5% budget bounds.
func benchReplay(nodes, runsWanted, incs int, analyze bool) int {
	days := (runsWanted + nodes - 1) / nodes
	e := sim.NewEngine()
	cl := cluster.New(e)
	tel := telemetry.New()
	tel.SetClock(e.Now)
	tr := tel.Trace()

	names := make([]string, nodes)
	cn := make([]*cluster.Node, nodes)
	for i := range cn {
		names[i] = fmt.Sprintf("bn%03d", i)
		cn[i] = cl.AddNode(names[i], 2, 1.0)
	}
	sampler := usage.NewSampler(cl, usage.Options{Interval: 900})
	horizon := float64(days) * 86400
	sampler.Start(horizon)

	var plan []PlanEntry
	root := tr.Begin("campaign", "bench", "factory", nil)
	runs := 0
	for d := 0; d < days && runs < runsWanted; d++ {
		for f := 0; f < nodes && runs < runsWanted; f++ {
			f, d := f, d
			runs++
			name := fmt.Sprintf("bf%03d", f)
			start := float64(d)*86400 + float64(f%8)*450
			plan = append(plan, PlanEntry{
				Forecast: name, Day: d + 1, Node: names[f],
				Start: start, End: start + 3000, Deadline: start + 7200,
			})
			e.At(start, func() {
				rs := tr.Begin("run", name, names[f], root)
				rs.SetArg("forecast", name)
				rs.SetArg("day", fmt.Sprint(d+1))
				rs.SetArg("node", names[f])
				ss := tr.Begin("simulation", "sim "+name, names[f], rs)
				var next func(i int)
				next = func(i int) {
					if i >= incs {
						ss.EndSpan()
						rs.EndSpan()
						return
					}
					cn[f].Submit(fmt.Sprintf("%s[%d]", name, i),
						3000.0/float64(incs), func() { next(i + 1) })
				}
				next(0)
			})
		}
	}
	e.Run()
	root.EndSpan()
	sampler.Finalize(e.Now())

	if !analyze {
		return 0
	}
	// The live pass queries the sampler in place — no sample export.
	rep, err := Analyze(Input{
		Spans:    tr.Spans(),
		Plan:     plan,
		Timeline: sampler,
	})
	if err != nil {
		panic(err)
	}
	return len(rep.Runs)
}

// BenchmarkReplayBaseline is the 200-node × 2000-run traced replay with
// no forensics pass: the denominator of the overhead budget.
func BenchmarkReplayBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchReplay(200, 2000, 96, false)
	}
}

// BenchmarkReplayAnalyzed is the same replay followed by a full forensics
// pass (critical paths + blame decomposition for all 2000 runs).
func BenchmarkReplayAnalyzed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n := benchReplay(200, 2000, 96, true); n != 2000 {
			b.Fatalf("analyzed %d runs, want 2000", n)
		}
	}
}

// TestEmitBenchReport measures the forensics pass's cost on a 200-node ×
// 2000-run campaign replay and writes a machine-readable report to the
// file named by BENCH_OUT; `make bench` sets it and CI uploads the result
// as an artifact. Without BENCH_OUT the test is skipped.
//
// Methodology mirrors the usage bench: plain and analyzed replays run as
// ABBA pairs so heap growth and machine drift cancel, and the reported
// overhead is the median of per-pair ratios.
func TestEmitBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("BENCH_OUT not set")
	}
	const (
		pairs = 8
		nodes = 200
		runs  = 2000
		incs  = 96
	)
	benchReplay(nodes, runs, incs, false) // warm-up
	benchReplay(nodes, runs, incs, true)
	var base, analyzed, ratios []float64
	for i := 0; i < pairs; i++ {
		var b, a float64
		if i%2 == 0 {
			t0 := time.Now()
			benchReplay(nodes, runs, incs, false)
			b = time.Since(t0).Seconds()
			t1 := time.Now()
			benchReplay(nodes, runs, incs, true)
			a = time.Since(t1).Seconds()
		} else {
			t1 := time.Now()
			benchReplay(nodes, runs, incs, true)
			a = time.Since(t1).Seconds()
			t0 := time.Now()
			benchReplay(nodes, runs, incs, false)
			b = time.Since(t0).Seconds()
		}
		base = append(base, b)
		analyzed = append(analyzed, a)
		ratios = append(ratios, 100*(a-b)/b)
	}
	sort.Float64s(ratios)
	overhead := (ratios[pairs/2-1] + ratios[pairs/2]) / 2
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	report := map[string]any{
		"scenario":            "replay-200x2000",
		"nodes":               nodes,
		"runs":                runs,
		"pairs":               pairs,
		"baseline_seconds":    mean(base),
		"analyzed_seconds":    mean(analyzed),
		"overhead_pct":        overhead,
		"overhead_budget_pct": 5.0,
	}
	if overhead > 5 {
		t.Errorf("forensics overhead %.1f%% exceeds the 5%% budget", overhead)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
