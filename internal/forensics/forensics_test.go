package forensics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/usage"
)

const eps = 1e-6

// synthInput builds a hand-computable single-run trace:
//
//	run f1/day1 on n1: [100, 700], extent 600
//	  simulation child  [150, 500]
//	  product child     [520, 700]
//	busy union 530 s → upstream wait 70 s
//	node n1 sample [100, 700]: share 0.8, 50 s down
//	  → failure 50, executing 480, contention 96, work 384
//	plan: start 50, end 434 (duration 384 → estimate error 0), deadline 600
//	  → queue wait 50, lateness 700−434 = 266 = 50+96+50+70+0
func synthInput() Input {
	return Input{
		Spans: []telemetry.Span{
			{ID: 1, Cat: "run", Name: "f1", Track: "n1", Start: 100, End: 700,
				Args: map[string]string{"forecast": "f1", "day": "1", "node": "n1"}},
			{ID: 2, Parent: 1, Cat: "simulation", Name: "sim f1", Track: "n1", Start: 150, End: 500},
			{ID: 3, Parent: 1, Cat: "product", Name: "prod p1", Track: "n1", Start: 520, End: 700},
		},
		Plan: []PlanEntry{
			{Forecast: "f1", Day: 1, Node: "n1", Start: 50, End: 434, Deadline: 600},
		},
		Timeline: NewTimeline([]usage.Sample{
			{Node: "n1", Start: 100, End: 700, MeanShare: 0.8, DownSecs: 50},
		}),
	}
}

func TestAnalyzeDecomposition(t *testing.T) {
	rep, err := Analyze(synthInput())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(rep.Runs))
	}
	r := rep.Runs[0]
	want := map[string]float64{
		CompQueueWait:     50,
		CompContention:    96,
		CompFailure:       50,
		CompUpstreamWait:  70,
		CompEstimateError: 0,
	}
	for c, w := range want {
		if got := r.Component(c); math.Abs(got-w) > eps {
			t.Errorf("%s = %v, want %v", c, got, w)
		}
	}
	if math.Abs(r.Lateness-266) > eps {
		t.Errorf("lateness = %v, want 266", r.Lateness)
	}
	if math.Abs(r.BlameSum()-r.Lateness) > eps {
		t.Errorf("blame sum %v != lateness %v", r.BlameSum(), r.Lateness)
	}
	if math.Abs(r.DeadlineMiss-100) > eps {
		t.Errorf("deadline miss = %v, want 100", r.DeadlineMiss)
	}
	if r.Dominant != CompContention {
		t.Errorf("dominant = %q, want %q", r.Dominant, CompContention)
	}
	if !r.Planned || math.Abs(r.MeanShare-0.8) > eps {
		t.Errorf("planned=%v share=%v, want true/0.8", r.Planned, r.MeanShare)
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	rep, err := Analyze(synthInput())
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Runs[0].Path
	wantKinds := []string{"wait", "simulation", "wait", "product"}
	if len(p) != len(wantKinds) {
		t.Fatalf("path has %d segments (%v), want %d", len(p), p, len(wantKinds))
	}
	for i, s := range p {
		if s.Seq != i {
			t.Errorf("segment %d has seq %d", i, s.Seq)
		}
		if s.Kind != wantKinds[i] {
			t.Errorf("segment %d kind %q, want %q", i, s.Kind, wantKinds[i])
		}
	}
	// The path tiles [run.Start, run.End] with no gaps or overlaps.
	if math.Abs(p[0].Start-100) > eps || math.Abs(p[len(p)-1].End-700) > eps {
		t.Errorf("path spans [%v, %v], want [100, 700]", p[0].Start, p[len(p)-1].End)
	}
	for i := 1; i < len(p); i++ {
		if math.Abs(p[i].Start-p[i-1].End) > eps {
			t.Errorf("gap between segment %d (end %v) and %d (start %v)",
				i-1, p[i-1].End, i, p[i].Start)
		}
	}
}

func TestAnalyzeUnplannedRun(t *testing.T) {
	in := synthInput()
	in.Plan = nil
	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if r.Planned {
		t.Fatal("run reported planned without a plan entry")
	}
	if r.QueueWait != 0 || r.EstimateError != 0 {
		t.Errorf("unplanned run has queue %v / estimate %v, want 0/0", r.QueueWait, r.EstimateError)
	}
	// Lateness degrades to pure overhead: wait + failure + contention.
	wantLate := 70.0 + 50 + 96
	if math.Abs(r.Lateness-wantLate) > eps {
		t.Errorf("lateness = %v, want %v", r.Lateness, wantLate)
	}
	if math.Abs(r.BlameSum()-r.Lateness) > eps {
		t.Errorf("blame sum %v != lateness %v", r.BlameSum(), r.Lateness)
	}
}

func TestAnalyzeInterruptedAndUnknownPlan(t *testing.T) {
	in := synthInput()
	in.Spans[0].Args["interrupted"] = "true"
	// End <= Start marks the prediction unknown → analyzed as unplanned.
	in.Plan[0].End = in.Plan[0].Start
	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if !r.Interrupted {
		t.Error("interrupted arg not surfaced")
	}
	if r.Planned || r.QueueWait != 0 {
		t.Errorf("unknown prediction treated as planned (planned=%v queue=%v)", r.Planned, r.QueueWait)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	in := synthInput()
	in.Plan[0].Forecast = ""
	if _, err := Analyze(in); err == nil {
		t.Error("empty plan forecast not rejected")
	}
	in = synthInput()
	in.Spans[0].Args["day"] = "first"
	if _, err := Analyze(in); err == nil {
		t.Error("non-integer day not rejected")
	}
	in = synthInput()
	in.Spans[0].End = in.Spans[0].Start - 1
	if _, err := Analyze(in); err == nil {
		t.Error("run ending before start not rejected")
	}
}

func TestClipUnion(t *testing.T) {
	kids := []telemetry.Span{
		{Start: 20, End: 40},   // overlaps the next
		{Start: 10, End: 30},   // out of order on purpose
		{Start: 60, End: 80},   // disjoint
		{Start: 75, End: 120},  // overlaps, extends past hi
		{Start: 200, End: 300}, // entirely outside [lo, hi]
		{Start: -50, End: -5},  // entirely before lo
		{Start: 90, End: 90},   // zero length
	}
	got := clipUnion(kids, 0, 100)
	want := [][2]float64{{10, 40}, {60, 100}}
	if len(got) != len(want) {
		t.Fatalf("clipUnion = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i][0]-want[i][0]) > eps || math.Abs(got[i][1]-want[i][1]) > eps {
			t.Fatalf("clipUnion = %v, want %v", got, want)
		}
	}
}

func TestTimelineIntegrals(t *testing.T) {
	tl := NewTimeline([]usage.Sample{
		{Node: "n1", Start: 0, End: 100, MeanShare: 1.0},
		{Node: "n1", Start: 100, End: 200, MeanShare: 0.5, DownSecs: 20},
		{Node: "n2", Start: 0, End: 100, MeanShare: 0.25},
	})
	// Full overlap of both n1 samples: run time 100 + 80, share-weighted.
	want := (1.0*100 + 0.5*80) / 180
	if got := tl.MeanShareOver("n1", 0, 200); math.Abs(got-want) > eps {
		t.Errorf("MeanShareOver(n1, 0, 200) = %v, want %v", got, want)
	}
	// Half overlap of the second sample pro-rates run and down time.
	want = (1.0*100 + 0.5*40) / 140
	if got := tl.MeanShareOver("n1", 0, 150); math.Abs(got-want) > eps {
		t.Errorf("MeanShareOver(n1, 0, 150) = %v, want %v", got, want)
	}
	if got := tl.DownSecsOver("n1", 0, 150); math.Abs(got-10) > eps {
		t.Errorf("DownSecsOver(n1, 0, 150) = %v, want 10", got)
	}
	// No samples / nil timeline: share 1, no down time.
	if got := tl.MeanShareOver("missing", 0, 100); got != 1 {
		t.Errorf("MeanShareOver on unknown node = %v, want 1", got)
	}
	var nilTL *Timeline
	if nilTL.MeanShareOver("n1", 0, 10) != 1 || nilTL.DownSecsOver("n1", 0, 10) != 0 {
		t.Error("nil Timeline must report share 1 and no down time")
	}
}

func TestDayAggregationPositiveOnly(t *testing.T) {
	runs := []RunBlame{
		{Forecast: "a", Day: 1, Lateness: 100, QueueWait: 100, Dominant: CompQueueWait},
		{Forecast: "b", Day: 1, Lateness: -50, QueueWait: -40, EstimateError: -10, Dominant: CompNone},
		{Forecast: "a", Day: 2, Lateness: 30, Contention: 30, Dominant: CompContention},
	}
	days := aggregateDays(runs)
	if len(days) != 2 {
		t.Fatalf("got %d days, want 2", len(days))
	}
	// Day 1: the early run must not cancel the late one's blame.
	if days[0].Lateness != 100 || days[0].Components[CompQueueWait] != 100 {
		t.Errorf("day 1 = %+v, want lateness 100 from queue_wait", days[0])
	}
	if days[0].Dominant != CompQueueWait || days[1].Dominant != CompContention {
		t.Errorf("dominants = %q/%q", days[0].Dominant, days[1].Dominant)
	}
}

func TestRenderers(t *testing.T) {
	rep, err := Analyze(synthInput())
	if err != nil {
		t.Fatal(err)
	}
	if got := BlameTable(rep, ""); got == "" || !contains(got, "contention") {
		t.Errorf("blame table missing dominant column:\n%s", got)
	}
	if got := BlameTable(rep, "nope"); !contains(got, "no analyzed runs") {
		t.Errorf("empty filter not reported:\n%s", got)
	}
	if got := DayTable(rep, 40); !contains(got, "blame mix") {
		t.Errorf("day table header missing:\n%s", got)
	}
	worst := WorstRun(rep, "")
	if worst == nil || worst.Forecast != "f1" {
		t.Fatalf("worst run = %+v", worst)
	}
	if g := PathGantt(worst); !contains(g, "critical path") || !contains(g, "simulation") {
		t.Errorf("gantt missing rows:\n%s", g)
	}
	if fs := Forecasts(rep); len(fs) != 1 || fs[0] != "f1" {
		t.Errorf("Forecasts = %v", fs)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
