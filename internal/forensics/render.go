package forensics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/plot"
)

// hhmm renders a duration in seconds as ±h:mm.
func hhmm(sec float64) string {
	sign := ""
	if sec < 0 {
		sign = "-"
		sec = -sec
	}
	h := int(sec) / 3600
	m := (int(sec) % 3600) / 60
	return fmt.Sprintf("%s%d:%02d", sign, h, m)
}

// BlameTable renders the per-run decomposition for one forecast ("" = all
// runs) as the foreman CLI's blame report.
func BlameTable(rep *Report, forecastName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %-10s %9s %7s %7s %7s %7s %7s %6s %-14s\n",
		"run", "day", "node", "lateness", "queue", "conten", "fail", "upstr", "est", "share", "dominant")
	shown := 0
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if forecastName != "" && r.Forecast != forecastName {
			continue
		}
		shown++
		flag := " "
		if r.Interrupted {
			flag = "!"
		}
		fmt.Fprintf(&b, "%-23s%s %4d %-10s %9s %7s %7s %7s %7s %7s %6.2f %-14s\n",
			r.Forecast, flag, r.Day, r.Node, hhmm(r.Lateness),
			hhmm(r.QueueWait), hhmm(r.Contention), hhmm(r.Failure),
			hhmm(r.UpstreamWait), hhmm(r.EstimateError), r.MeanShare, r.Dominant)
	}
	if shown == 0 {
		fmt.Fprintf(&b, "(no analyzed runs%s)\n", forClause(forecastName))
	}
	return b.String()
}

// DayTable renders the per-day aggregate blame with a stacked text bar
// per day — the terminal cousin of the dashboard's blame panel.
func DayTable(rep *Report, width int) string {
	if width <= 0 {
		width = 40
	}
	var maxLate float64
	for _, d := range rep.Days {
		if d.Lateness > maxLate {
			maxLate = d.Lateness
		}
	}
	symbols := map[string]byte{
		CompQueueWait:     'q',
		CompContention:    'c',
		CompFailure:       'f',
		CompUpstreamWait:  'u',
		CompEstimateError: 'e',
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %5s %9s %-14s blame mix (q=queue c=contention f=failure u=upstream e=estimate)\n",
		"day", "runs", "lateness", "dominant")
	for _, d := range rep.Days {
		var bar strings.Builder
		if maxLate > 0 {
			var total float64
			for _, c := range Components() {
				total += d.Components[c]
			}
			if total > 0 {
				cols := d.Lateness / maxLate * float64(width)
				for _, c := range Components() {
					n := int(math.Round(d.Components[c] / total * cols))
					bar.Write(bytesRepeat(symbols[c], n))
				}
			}
		}
		fmt.Fprintf(&b, "%4d %5d %9s %-14s |%s\n", d.Day, d.Runs, hhmm(d.Lateness), d.Dominant, bar.String())
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// PathGantt renders one run's critical path as a terminal Gantt: one row
// per segment kind (simulation, product, wait), bars in path order, the
// planned end as the "now" marker.
func PathGantt(r *RunBlame) string {
	if len(r.Path) == 0 {
		return fmt.Sprintf("(no critical path recorded for %s day %d)\n", r.Forecast, r.Day)
	}
	origin := r.Start
	var bars []plot.GanttBar
	for _, s := range r.Path {
		bars = append(bars, plot.GanttBar{
			Node:  s.Kind,
			Run:   s.Name,
			Start: s.Start - origin,
			End:   s.End - origin,
		})
	}
	now := 0.0
	if r.PlannedEnd > origin {
		now = r.PlannedEnd - origin
	}
	g := plot.Gantt{
		Title: fmt.Sprintf("critical path: %s day %d on %s (lateness %s, dominant %s; | = planned end)",
			r.Forecast, r.Day, r.Node, hhmm(r.Lateness), r.Dominant),
		Bars: bars,
		Now:  now,
	}
	return g.Render()
}

// WorstRun returns the analyzed run with the largest lateness for a
// forecast ("" = any forecast), or nil when nothing matches.
func WorstRun(rep *Report, forecastName string) *RunBlame {
	var worst *RunBlame
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if forecastName != "" && r.Forecast != forecastName {
			continue
		}
		if worst == nil || r.Lateness > worst.Lateness {
			worst = r
		}
	}
	return worst
}

// Forecasts returns the distinct forecast names in the report, sorted.
func Forecasts(rep *Report) []string {
	seen := make(map[string]bool)
	var out []string
	for i := range rep.Runs {
		if f := rep.Runs[i].Forecast; !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

func forClause(forecastName string) string {
	if forecastName == "" {
		return ""
	}
	return " for " + forecastName
}
