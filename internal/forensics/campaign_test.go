package forensics

import (
	"math"
	"testing"

	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// forensicSpec builds a quick forecast (sim ≈ 2222 s at speed 1).
func forensicSpec(name string) *forecast.Spec {
	s := forecast.NewSpec(name, "r", 960, 10000, 2)
	s.StartOffset = 3600
	return s
}

// forensicCampaign runs a 3-day campaign engineered to exercise every
// blame component: f1 and f2 share fnode01 (contention), f3 has fnode02
// to itself but the node fails for 1200 s inside its first run.
func forensicCampaign(t *testing.T) (*factory.Campaign, *telemetry.Telemetry, *usage.Sampler) {
	t.Helper()
	tel := telemetry.New()
	c, err := factory.New(factory.Config{
		Days: 3,
		Forecasts: []factory.Assignment{
			{Spec: forensicSpec("f1"), Node: "fnode01"},
			{Spec: forensicSpec("f2"), Node: "fnode01"},
			{Spec: forensicSpec("f3"), Node: "fnode02"},
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Prepare()
	sampler := usage.NewSampler(c.Cluster(), usage.Options{Interval: 300})
	sampler.Start(c.Horizon())
	node := c.Cluster().Node("fnode02")
	if node == nil {
		t.Fatal("fnode02 missing")
	}
	eng := c.Engine()
	// Day 1: f3 launches at 3600 and runs for ~2222 s + products; fail its
	// node mid-simulation.
	eng.At(4000, func() { node.Fail() })
	eng.At(5200, func() { node.Repair() })
	c.Finish()
	sampler.Finalize(eng.Now())
	return c, tel, sampler
}

// campaignPlan derives plan entries from the campaign's own launch rule
// (day start + spec offset) plus a fixed duration estimate. The blame
// identity is algebraic — it must hold whatever the plan says — so the
// estimate is deliberately rough.
func campaignPlan(c *factory.Campaign, estimate float64) []PlanEntry {
	var plan []PlanEntry
	for _, fc := range c.Forecasts() {
		spec := c.Spec(fc)
		for day := c.StartDay(); day < c.StartDay()+c.Days(); day++ {
			start := float64(day-c.StartDay())*factory.SecondsPerDay + spec.StartOffset
			plan = append(plan, PlanEntry{
				Forecast: fc,
				Day:      day,
				Node:     c.AssignedNode(fc),
				Start:    start,
				End:      start + estimate,
				Deadline: float64(day-c.StartDay())*factory.SecondsPerDay + spec.Deadline,
			})
		}
	}
	return plan
}

// TestCampaignBlameSumsToLateness is the issue's acceptance property: on
// a seeded campaign with injected failures and contention, every run's
// five components sum to its observed lateness, and the engineered causes
// actually show up in the decomposition.
func TestCampaignBlameSumsToLateness(t *testing.T) {
	c, tel, sampler := forensicCampaign(t)
	rep, err := Analyze(Input{
		Spans:    tel.Trace().Spans(),
		Plan:     campaignPlan(c, 2000),
		Timeline: NewTimeline(sampler.Samples()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 9 {
		t.Fatalf("analyzed %d runs, want 9", len(rep.Runs))
	}

	var sawContention, sawFailure bool
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if diff := math.Abs(r.BlameSum() - r.Lateness); diff > 1e-6 {
			t.Errorf("%s/%d: blame sum %v != lateness %v (diff %v)",
				r.Forecast, r.Day, r.BlameSum(), r.Lateness, diff)
		}
		if !r.Planned {
			t.Errorf("%s/%d analyzed as unplanned", r.Forecast, r.Day)
		}
		// The critical path tiles the run's extent.
		if len(r.Path) == 0 {
			t.Errorf("%s/%d has no critical path", r.Forecast, r.Day)
			continue
		}
		if math.Abs(r.Path[0].Start-r.Start) > 1e-6 || math.Abs(r.Path[len(r.Path)-1].End-r.End) > 1e-6 {
			t.Errorf("%s/%d path spans [%v, %v], run spans [%v, %v]",
				r.Forecast, r.Day, r.Path[0].Start, r.Path[len(r.Path)-1].End, r.Start, r.End)
		}
		for j := 1; j < len(r.Path); j++ {
			if math.Abs(r.Path[j].Start-r.Path[j-1].End) > 1e-6 {
				t.Errorf("%s/%d path discontinuous at segment %d", r.Forecast, r.Day, j)
			}
		}
		if r.Node == "fnode01" && r.Contention > 0 {
			sawContention = true
		}
		if r.Forecast == "f3" && r.Day == 1 && r.Failure > 0 {
			sawFailure = true
		}
	}
	if !sawContention {
		t.Error("co-located forecasts on fnode01 produced no contention blame")
	}
	if !sawFailure {
		t.Error("injected fnode02 failure produced no failure blame on f3/1")
	}
}

// TestReportStatsdbRoundTrip checks the persistence half: Analyze →
// LoadReport → ReadReport reproduces every run row and path segment, so
// the CLI report and /api/forensics (both of which render ReadReport
// output) cannot disagree.
func TestReportStatsdbRoundTrip(t *testing.T) {
	c, tel, sampler := forensicCampaign(t)
	rep, err := Analyze(Input{
		Spans:    tel.Trace().Spans(),
		Plan:     campaignPlan(c, 2000),
		Timeline: NewTimeline(sampler.Samples()),
	})
	if err != nil {
		t.Fatal(err)
	}
	db := statsdb.NewDB()
	if err := LoadReport(db, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(rep.Runs) {
		t.Fatalf("read back %d runs, want %d", len(got.Runs), len(rep.Runs))
	}
	for i := range rep.Runs {
		a, b := &rep.Runs[i], &got.Runs[i]
		if a.Forecast != b.Forecast || a.Day != b.Day || a.Node != b.Node ||
			a.Dominant != b.Dominant || a.Planned != b.Planned || a.Interrupted != b.Interrupted {
			t.Errorf("run %d identity mismatch: %+v vs %+v", i, a, b)
		}
		for _, comp := range Components() {
			if math.Abs(a.Component(comp)-b.Component(comp)) > 1e-9 {
				t.Errorf("run %d %s: %v vs %v", i, comp, a.Component(comp), b.Component(comp))
			}
		}
		if math.Abs(a.Lateness-b.Lateness) > 1e-9 || math.Abs(a.DeadlineMiss-b.DeadlineMiss) > 1e-9 {
			t.Errorf("run %d lateness mismatch", i)
		}
		if len(a.Path) != len(b.Path) {
			t.Errorf("run %d path length %d vs %d", i, len(a.Path), len(b.Path))
			continue
		}
		for j := range a.Path {
			if a.Path[j] != b.Path[j] {
				t.Errorf("run %d segment %d: %+v vs %+v", i, j, a.Path[j], b.Path[j])
			}
		}
	}
	if len(got.Days) != len(rep.Days) {
		t.Fatalf("read back %d days, want %d", len(got.Days), len(rep.Days))
	}
	for i := range rep.Days {
		if got.Days[i].Dominant != rep.Days[i].Dominant || got.Days[i].Runs != rep.Days[i].Runs {
			t.Errorf("day %d: %+v vs %+v", i, rep.Days[i], got.Days[i])
		}
	}
	// The v4 tables join with the rest of the stats database over SQL.
	res, err := db.Query("SELECT forecast, COUNT(*) FROM lateness_blame GROUP BY forecast ORDER BY forecast ASC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("blame rows group into %d forecasts, want 3", len(res.Rows))
	}
}
