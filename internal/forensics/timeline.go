package forensics

import (
	"math"
	"sort"

	"repro/internal/usage"
)

// Timeline is a post-hoc view of the utilization observatory's per-node
// samples: the share and down-time integrals the blame decomposition
// needs, computable from a live Sampler's Samples() or from node_usage
// rows read back out of the statistics database — which is what makes a
// forensics pass replayable long after the campaign's engine is gone.
// A nil *Timeline reports share 1 and no down time everywhere.
type Timeline struct {
	nodes map[string][]usage.Sample
}

// Both the replayable Timeline and the live Sampler feed Analyze.
var (
	_ ShareSource = (*Timeline)(nil)
	_ ShareSource = (*usage.Sampler)(nil)
)

// NewTimeline groups samples per node and sorts each node's slice by
// interval start. A node's samples are assumed non-overlapping (they are
// timeline buckets), which is what lets the integrals below locate the
// overlap range by binary search. Input already contiguous per node — the
// layout Sampler.Samples() and a node-ordered statsdb read both produce —
// is subsliced in place rather than copied, which keeps a forensics pass
// over a campaign-scale timeline out of the allocator.
func NewTimeline(samples []usage.Sample) *Timeline {
	t := &Timeline{nodes: make(map[string][]usage.Sample)}
	grouped := true
	for i := 0; i < len(samples); {
		j := i + 1
		for j < len(samples) && samples[j].Node == samples[i].Node {
			j++
		}
		if _, dup := t.nodes[samples[i].Node]; dup {
			grouped = false
			break
		}
		t.nodes[samples[i].Node] = samples[i:j:j]
		i = j
	}
	if !grouped {
		// Interleaved nodes: rebuild with per-node copies.
		t.nodes = make(map[string][]usage.Sample)
		for _, s := range samples {
			t.nodes[s.Node] = append(t.nodes[s.Node], s)
		}
	}
	for _, ss := range t.nodes {
		if !sort.SliceIsSorted(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start }) {
			sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		}
	}
	return t
}

// overlapping returns the node's samples that can intersect [start, end]:
// the suffix whose End exceeds start, truncated where Start reaches end.
// With disjoint sorted buckets both bounds are binary-searchable, so a
// forensics pass over thousands of runs stays linear in actual overlap
// instead of rescanning whole campaign timelines per run.
func (t *Timeline) overlapping(node string, start, end float64) []usage.Sample {
	ss := t.nodes[node]
	lo := sort.Search(len(ss), func(i int) bool { return ss[i].End > start })
	hi := lo + sort.Search(len(ss)-lo, func(i int) bool { return ss[lo+i].Start >= end })
	return ss[lo:hi]
}

// MeanShareOver returns the time-average per-job CPU share on a node
// across [start, end], integrated from the samples exactly the way the
// live Sampler computes it (1 when the window holds no running time).
// Timeline therefore satisfies usage.ShareSource.
func (t *Timeline) MeanShareOver(node string, start, end float64) float64 {
	if t == nil || end <= start {
		return 1
	}
	var shareInt, runSecs float64
	for _, sm := range t.overlapping(node, start, end) {
		lo, hi := math.Max(sm.Start, start), math.Min(sm.End, end)
		if hi <= lo || sm.End <= sm.Start {
			continue
		}
		frac := (hi - lo) / (sm.End - sm.Start)
		run := (sm.End - sm.Start - sm.IdleSecs - sm.DownSecs) * frac
		shareInt += sm.MeanShare * run
		runSecs += run
	}
	if runSecs <= 0 {
		return 1
	}
	return shareInt / runSecs
}

// DownSecsOver returns the node's down time overlapping [start, end],
// pro-rated within partially overlapped sample intervals.
func (t *Timeline) DownSecsOver(node string, start, end float64) float64 {
	if t == nil || end <= start {
		return 0
	}
	var down float64
	for _, sm := range t.overlapping(node, start, end) {
		lo, hi := math.Max(sm.Start, start), math.Min(sm.End, end)
		if hi <= lo || sm.End <= sm.Start {
			continue
		}
		down += sm.DownSecs * (hi - lo) / (sm.End - sm.Start)
	}
	return down
}
