// Package forensics answers the factory operator's question the paper's
// whole management premise (§4.3) circles: why was this forecast late?
// It is a post-hoc, replayable analysis layer over the sensors the
// observability PRs built — telemetry spans give each run's causal chain,
// the planner's prediction gives what should have happened, and the usage
// timelines give what the node was doing while it happened. From those a
// pass extracts each run's critical path through the workflow/dataflow
// DAG and decomposes its lateness into five named components that sum,
// exactly, to the observed lateness (see DESIGN.md §10):
//
//	queue wait      launching after the planned start (ready, no node)
//	contention      PS share < 1 stretching the executing time
//	failure         node down time inside the run's extent
//	upstream wait   blocked on dataflow inputs (no child span active)
//	estimate error  effective work time vs the planned duration
package forensics

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// Component names, as persisted in the dominant column and served by
// /api/forensics. Order is the canonical report order.
const (
	CompQueueWait     = "queue_wait"
	CompContention    = "contention"
	CompFailure       = "failure"
	CompUpstreamWait  = "upstream_wait"
	CompEstimateError = "estimate_error"
	// CompNone marks a run (or day) with no positive blame component.
	CompNone = "none"
)

// Components lists the five blame components in canonical order.
func Components() []string {
	return []string{CompQueueWait, CompContention, CompFailure, CompUpstreamWait, CompEstimateError}
}

// PlanEntry is what the plan said about one run: where and when it was
// supposed to execute. Start/End/Deadline are absolute campaign seconds.
// Sources: core.Plan+Prediction for a planned replay, or the monitor's
// launch-time schedule (day start + spec offset, LaunchETA) for a live
// campaign. End <= Start marks the prediction unknown; the run is then
// analyzed as unplanned (zero queue wait and estimate error).
type PlanEntry struct {
	Forecast string  `json:"forecast"`
	Day      int     `json:"day"`
	Node     string  `json:"node"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Deadline float64 `json:"deadline"`
}

// ShareSource supplies the observed node conditions the decomposition
// charges the contention and failure components against. Both the live
// usage.Sampler (zero-copy, mid-campaign) and the replayable Timeline
// (from persisted node_usage rows) implement it.
type ShareSource interface {
	MeanShareOver(node string, start, end float64) float64
	DownSecsOver(node string, start, end float64) float64
}

// Input bundles one forensics pass's evidence.
type Input struct {
	// Spans is the campaign trace (telemetry.Tracer.Spans). Run spans
	// (cat "run") anchor the analysis; their child simulation and product
	// spans reconstruct the causal chain.
	Spans []telemetry.Span
	// Plan carries the planned start/end/deadline per (forecast, day).
	// Runs without an entry are analyzed as unplanned.
	Plan []PlanEntry
	// Timeline supplies observed CPU shares and node down time (may be
	// nil: share 1, no failures).
	Timeline ShareSource
}

// Segment is one step of a run's critical path: a span that gated the
// run's completion, or a wait gap where nothing of the run was executing
// (blocked on dataflow inputs or dispatch).
type Segment struct {
	Seq   int     `json:"seq"`
	Kind  string  `json:"kind"` // span category, or "wait" for gaps
	Name  string  `json:"name"`
	Node  string  `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns the segment length in seconds.
func (s Segment) Duration() float64 { return s.End - s.Start }

// RunBlame is the forensic verdict on one run: its observed extent, the
// plan it was held against, the lateness decomposition, and the critical
// path. The five components sum to Lateness exactly (the property the
// tests enforce); negative components are credits (an early start, an
// overestimate) and positive ones are blame.
type RunBlame struct {
	Forecast string  `json:"forecast"`
	Day      int     `json:"day"`
	Node     string  `json:"node"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`

	Planned      bool    `json:"planned"`
	PlannedStart float64 `json:"planned_start"`
	PlannedEnd   float64 `json:"planned_end"`
	Deadline     float64 `json:"deadline,omitempty"`

	// Lateness is End − PlannedEnd: how far past the plan the run landed
	// (negative = early). DeadlineMiss is max(0, End − Deadline), zero
	// when no deadline is known.
	Lateness     float64 `json:"lateness"`
	DeadlineMiss float64 `json:"deadline_miss,omitempty"`

	QueueWait     float64 `json:"queue_wait"`
	Contention    float64 `json:"contention"`
	Failure       float64 `json:"failure"`
	UpstreamWait  float64 `json:"upstream_wait"`
	EstimateError float64 `json:"estimate_error"`

	// MeanShare is the observed time-average CPU share on the run's node
	// across its extent — the contention component's evidence.
	MeanShare float64 `json:"mean_share"`
	// Dominant names the largest positive component (CompNone when the
	// run has nothing to blame).
	Dominant string `json:"dominant"`
	// Interrupted marks runs whose span was closed by EndOpen (the
	// campaign ended mid-run); their extent is what was observed.
	Interrupted bool `json:"interrupted,omitempty"`

	Path []Segment `json:"path,omitempty"`
}

// Component returns a blame component by name (0 for unknown names).
func (r *RunBlame) Component(name string) float64 {
	switch name {
	case CompQueueWait:
		return r.QueueWait
	case CompContention:
		return r.Contention
	case CompFailure:
		return r.Failure
	case CompUpstreamWait:
		return r.UpstreamWait
	case CompEstimateError:
		return r.EstimateError
	}
	return 0
}

// BlameSum returns the five components' sum — equal to Lateness up to
// float noise, by construction.
func (r *RunBlame) BlameSum() float64 {
	return r.QueueWait + r.Contention + r.Failure + r.UpstreamWait + r.EstimateError
}

// DayBlame aggregates one campaign day's blame across all runs. Only
// positive contributions count: blame explains lateness, and one run's
// early start must not cancel another's queueing.
type DayBlame struct {
	Day  int `json:"day"`
	Runs int `json:"runs"`
	// Lateness is the summed positive lateness of the day's runs.
	Lateness   float64            `json:"lateness"`
	Components map[string]float64 `json:"components"`
	Dominant   string             `json:"dominant"`
}

// Report is one forensics pass's full result, served by /api/forensics
// and rendered by `foreman -blame`.
type Report struct {
	Runs []RunBlame `json:"runs"`
	Days []DayBlame `json:"days"`
}

// runKey formats the conventional "forecast/day" key.
func runKey(forecastName string, day int) string {
	return fmt.Sprintf("%s/%d", forecastName, day)
}

// pathEps tolerates float noise when chaining span endpoints.
const pathEps = 1e-9

// Analyze reconstructs every run's causal chain from the trace and
// decomposes its lateness. Spans are matched to plan entries on
// (forecast, day); runs the trace never saw are skipped (nothing
// observed, nothing to blame). Results are ordered by (day, forecast).
func Analyze(in Input) (*Report, error) {
	plan := make(map[string]PlanEntry, len(in.Plan))
	for _, p := range in.Plan {
		if p.Forecast == "" {
			return nil, fmt.Errorf("forensics: plan entry with empty forecast")
		}
		plan[runKey(p.Forecast, p.Day)] = p
	}

	// Index the trace: run spans anchor runs; child simulation/product
	// spans reconstruct what was executing inside them.
	children := make(map[int64][]telemetry.Span)
	var runs []telemetry.Span
	for _, s := range in.Spans {
		switch s.Cat {
		case "run":
			runs = append(runs, s)
		case "simulation", "product":
			children[s.Parent] = append(children[s.Parent], s)
		}
	}

	shares := in.Timeline
	if shares == nil {
		shares = (*Timeline)(nil) // nil-safe: share 1, no down time
	}

	rep := &Report{}
	for _, rs := range runs {
		forecastName := rs.Args["forecast"]
		if forecastName == "" {
			forecastName = rs.Name
		}
		day := 0
		if d := rs.Args["day"]; d != "" {
			n, err := strconv.Atoi(d)
			if err != nil {
				return nil, fmt.Errorf("forensics: run span %d (%s) has non-integer day %q", rs.ID, rs.Name, d)
			}
			day = n
		}
		node := rs.Args["node"]
		if node == "" {
			node = rs.Track
		}
		if rs.End < rs.Start {
			return nil, fmt.Errorf("forensics: run span %d (%s) ends before it starts", rs.ID, rs.Name)
		}

		kids := children[rs.ID]
		busy := clipUnion(kids, rs.Start, rs.End)
		var busySecs float64
		for _, iv := range busy {
			busySecs += iv[1] - iv[0]
		}

		b := RunBlame{
			Forecast:    forecastName,
			Day:         day,
			Node:        node,
			Start:       rs.Start,
			End:         rs.End,
			MeanShare:   shares.MeanShareOver(node, rs.Start, rs.End),
			Interrupted: rs.Args["interrupted"] == "true",
			Path:        criticalPath(rs, kids),
		}

		extent := rs.End - rs.Start
		b.UpstreamWait = math.Max(0, extent-busySecs)
		b.Failure = math.Min(shares.DownSecsOver(node, rs.Start, rs.End), busySecs)
		executing := busySecs - b.Failure
		b.Contention = (1 - b.MeanShare) * executing
		workSecs := b.MeanShare * executing // effective seconds at share 1

		if p, ok := plan[runKey(forecastName, day)]; ok && p.End > p.Start {
			b.Planned = true
			b.PlannedStart = p.Start
			b.PlannedEnd = p.End
			b.Deadline = p.Deadline
			b.QueueWait = rs.Start - p.Start
			b.EstimateError = workSecs - (p.End - p.Start)
			if p.Deadline > 0 {
				b.DeadlineMiss = math.Max(0, rs.End-p.Deadline)
			}
		} else {
			// Unplanned: hold the run against its own effective work, so
			// lateness becomes pure overhead (wait + failure + contention).
			b.PlannedStart = rs.Start
			b.PlannedEnd = rs.Start + workSecs
		}
		b.Lateness = rs.End - b.PlannedEnd
		b.Dominant = dominantComponent(&b)
		rep.Runs = append(rep.Runs, b)
	}

	sort.Slice(rep.Runs, func(i, j int) bool {
		if rep.Runs[i].Day != rep.Runs[j].Day {
			return rep.Runs[i].Day < rep.Runs[j].Day
		}
		return rep.Runs[i].Forecast < rep.Runs[j].Forecast
	})
	rep.Days = aggregateDays(rep.Runs)
	return rep, nil
}

// dominantComponent names the largest strictly positive component.
func dominantComponent(b *RunBlame) string {
	best, bestV := CompNone, 0.0
	for _, c := range Components() {
		if v := b.Component(c); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// aggregateDays folds per-run blame into per-day totals, positive
// contributions only.
func aggregateDays(runs []RunBlame) []DayBlame {
	byDay := make(map[int]*DayBlame)
	var days []int
	for i := range runs {
		r := &runs[i]
		d, ok := byDay[r.Day]
		if !ok {
			d = &DayBlame{Day: r.Day, Components: make(map[string]float64, 5)}
			byDay[r.Day] = d
			days = append(days, r.Day)
		}
		d.Runs++
		d.Lateness += math.Max(0, r.Lateness)
		for _, c := range Components() {
			if v := r.Component(c); v > 0 {
				d.Components[c] += v
			}
		}
	}
	sort.Ints(days)
	out := make([]DayBlame, 0, len(days))
	for _, day := range days {
		d := byDay[day]
		best, bestV := CompNone, 0.0
		for _, c := range Components() {
			if v := d.Components[c]; v > bestV {
				best, bestV = c, v
			}
		}
		d.Dominant = best
		out = append(out, *d)
	}
	return out
}

// clipUnion returns the union of the child spans' intervals clipped to
// [lo, hi], as sorted disjoint [start, end] pairs — the time at least one
// piece of the run (simulation increment stream, product task) was
// submitted to a node. Everything outside the union is upstream wait.
func clipUnion(kids []telemetry.Span, lo, hi float64) [][2]float64 {
	ivs := make([][2]float64, 0, len(kids))
	for _, k := range kids {
		s, e := math.Max(k.Start, lo), math.Min(k.End, hi)
		if e > s {
			ivs = append(ivs, [2]float64{s, e})
		}
	}
	if len(ivs) > 1 {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	}
	var out [][2]float64
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv[0] <= out[n-1][1] {
			if iv[1] > out[n-1][1] {
				out[n-1][1] = iv[1]
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// criticalPath walks the run's child spans backward from its end: at each
// point the chain adopts the child that finished last at or before the
// current frontier — the span that gated progress — and any gap between
// it and the frontier becomes a wait segment (the run existed but none of
// its work was executing: blocked on dataflow inputs or dispatch). The
// result covers [run.Start, run.End] and reads forward in Seq order.
func criticalPath(run telemetry.Span, kids []telemetry.Span) []Segment {
	node := run.Args["node"]
	if node == "" {
		node = run.Track
	}
	if run.End <= run.Start {
		return nil
	}
	// Sort by end time so the backward walk can scan for the latest
	// finisher at or before the frontier.
	sorted := make([]telemetry.Span, 0, len(kids))
	for _, k := range kids {
		if math.Min(k.End, run.End) > math.Max(k.Start, run.Start) {
			sorted = append(sorted, k)
		}
	}
	if len(sorted) > 1 {
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].End != sorted[j].End {
				return sorted[i].End < sorted[j].End
			}
			return sorted[i].Start < sorted[j].Start
		})
	}

	var rev []Segment
	frontier := run.End
	idx := len(sorted) - 1
	for frontier > run.Start+pathEps {
		// Latest-finishing child at or before the frontier.
		for idx >= 0 && sorted[idx].End > frontier+pathEps {
			idx--
		}
		if idx < 0 {
			rev = append(rev, Segment{Kind: "wait", Name: "waiting", Node: node,
				Start: run.Start, End: frontier})
			break
		}
		k := sorted[idx]
		kStart := math.Max(k.Start, run.Start)
		if kStart >= frontier-pathEps {
			// Degenerate (zero-length after clipping): skip, keep walking.
			idx--
			continue
		}
		kEnd := math.Min(k.End, frontier)
		if kEnd < frontier-pathEps {
			rev = append(rev, Segment{Kind: "wait", Name: "waiting", Node: node,
				Start: kEnd, End: frontier})
		}
		kNode := k.Track
		if kNode == "" {
			kNode = node
		}
		rev = append(rev, Segment{Kind: k.Cat, Name: k.Name, Node: kNode,
			Start: kStart, End: kEnd})
		frontier = kStart
	}
	out := make([]Segment, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
		out[i].Seq = i
	}
	return out
}
