package forensics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/statsdb"
)

// Table names added by the schema v4 migration. Both join with the runs,
// spans, and node_usage tables on (forecast, day) and node.
const (
	BlameTableName = "lateness_blame"
	PathsTableName = "critical_paths"
)

// BlameSchema returns the schema of the lateness_blame table: one row per
// analyzed run, carrying the full decomposition.
func BlameSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "forecast", Type: statsdb.String},
		{Name: "day", Type: statsdb.Int},
		{Name: "node", Type: statsdb.String},
		{Name: "start", Type: statsdb.Float},
		{Name: "end", Type: statsdb.Float},
		{Name: "planned", Type: statsdb.Bool},
		{Name: "planned_start", Type: statsdb.Float},
		{Name: "planned_end", Type: statsdb.Float},
		{Name: "deadline", Type: statsdb.Float},
		{Name: "lateness", Type: statsdb.Float},
		{Name: "deadline_miss", Type: statsdb.Float},
		{Name: "queue_wait", Type: statsdb.Float},
		{Name: "contention", Type: statsdb.Float},
		{Name: "failure", Type: statsdb.Float},
		{Name: "upstream_wait", Type: statsdb.Float},
		{Name: "estimate_error", Type: statsdb.Float},
		{Name: "mean_share", Type: statsdb.Float},
		{Name: "dominant", Type: statsdb.String},
		{Name: "interrupted", Type: statsdb.Bool},
	}
}

// PathsSchema returns the schema of the critical_paths table: one row per
// critical-path segment, ordered by seq within a run.
func PathsSchema() statsdb.Schema {
	return statsdb.Schema{
		{Name: "forecast", Type: statsdb.String},
		{Name: "day", Type: statsdb.Int},
		{Name: "seq", Type: statsdb.Int},
		{Name: "kind", Type: statsdb.String},
		{Name: "name", Type: statsdb.String},
		{Name: "node", Type: statsdb.String},
		{Name: "start", Type: statsdb.Float},
		{Name: "end", Type: statsdb.Float},
		{Name: "duration", Type: statsdb.Float},
	}
}

// Migrations returns the forensics layer's schema migrations: v4 creates
// the lateness_blame and critical_paths tables with their lookup indexes.
// Combine with harvest.Migrations() (v1, v2) and usage.Migrations() (v3);
// Migrate tracks each version independently.
func Migrations() []statsdb.Migration {
	return []statsdb.Migration{
		{
			Version: 4,
			Name:    "forensics-tables",
			Apply: func(db *statsdb.DB) error {
				if db.Table(BlameTableName) == nil {
					t, err := db.CreateTable(BlameTableName, BlameSchema())
					if err != nil {
						return err
					}
					for _, col := range []string{"forecast", "day"} {
						if err := t.CreateIndex(col); err != nil {
							return err
						}
					}
				}
				if db.Table(PathsTableName) == nil {
					t, err := db.CreateTable(PathsTableName, PathsSchema())
					if err != nil {
						return err
					}
					if err := t.CreateIndex("forecast"); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// finite guards statsdb's NaN rejection: non-finite floats persist as 0.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// LoadReport persists one pass's results into the lateness_blame and
// critical_paths tables (created via the v4 migration when missing).
// One pass analyzes a whole campaign, so load each report once; the CLI
// report and /api/forensics both read these rows back via ReadReport.
func LoadReport(db *statsdb.DB, rep *Report) error {
	if _, err := statsdb.Migrate(db, Migrations()); err != nil {
		return err
	}
	bt := db.Table(BlameTableName)
	pt := db.Table(PathsTableName)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Forecast == "" {
			return fmt.Errorf("forensics: blame row with empty forecast")
		}
		err := bt.Insert([]statsdb.Value{
			statsdb.StringVal(r.Forecast),
			statsdb.IntVal(int64(r.Day)),
			statsdb.StringVal(r.Node),
			statsdb.FloatVal(finite(r.Start)),
			statsdb.FloatVal(finite(r.End)),
			statsdb.BoolVal(r.Planned),
			statsdb.FloatVal(finite(r.PlannedStart)),
			statsdb.FloatVal(finite(r.PlannedEnd)),
			statsdb.FloatVal(finite(r.Deadline)),
			statsdb.FloatVal(finite(r.Lateness)),
			statsdb.FloatVal(finite(r.DeadlineMiss)),
			statsdb.FloatVal(finite(r.QueueWait)),
			statsdb.FloatVal(finite(r.Contention)),
			statsdb.FloatVal(finite(r.Failure)),
			statsdb.FloatVal(finite(r.UpstreamWait)),
			statsdb.FloatVal(finite(r.EstimateError)),
			statsdb.FloatVal(finite(r.MeanShare)),
			statsdb.StringVal(r.Dominant),
			statsdb.BoolVal(r.Interrupted),
		})
		if err != nil {
			return err
		}
		for _, s := range r.Path {
			err := pt.Insert([]statsdb.Value{
				statsdb.StringVal(r.Forecast),
				statsdb.IntVal(int64(r.Day)),
				statsdb.IntVal(int64(s.Seq)),
				statsdb.StringVal(s.Kind),
				statsdb.StringVal(s.Name),
				statsdb.StringVal(s.Node),
				statsdb.FloatVal(finite(s.Start)),
				statsdb.FloatVal(finite(s.End)),
				statsdb.FloatVal(finite(s.End - s.Start)),
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadReport reconstructs a Report from the persisted tables — the
// replayable half of the pipeline: the CLI report, the JSON endpoint, and
// any later analysis all derive from the same statsdb rows. Day
// aggregates are recomputed from the run rows. Returns an empty report
// when the tables are absent.
func ReadReport(db *statsdb.DB) (*Report, error) {
	rep := &Report{}
	bt := db.Table(BlameTableName)
	if bt == nil {
		return rep, nil
	}
	schema := bt.Schema()
	col := make(map[string]int, len(schema))
	for i, c := range schema {
		col[c.Name] = i
	}
	for i := 0; i < bt.Len(); i++ {
		row := bt.Row(i)
		r := RunBlame{
			Forecast:      row[col["forecast"]].Str(),
			Day:           int(row[col["day"]].Int()),
			Node:          row[col["node"]].Str(),
			Start:         row[col["start"]].Float(),
			End:           row[col["end"]].Float(),
			Planned:       row[col["planned"]].Bool(),
			PlannedStart:  row[col["planned_start"]].Float(),
			PlannedEnd:    row[col["planned_end"]].Float(),
			Deadline:      row[col["deadline"]].Float(),
			Lateness:      row[col["lateness"]].Float(),
			DeadlineMiss:  row[col["deadline_miss"]].Float(),
			QueueWait:     row[col["queue_wait"]].Float(),
			Contention:    row[col["contention"]].Float(),
			Failure:       row[col["failure"]].Float(),
			UpstreamWait:  row[col["upstream_wait"]].Float(),
			EstimateError: row[col["estimate_error"]].Float(),
			MeanShare:     row[col["mean_share"]].Float(),
			Dominant:      row[col["dominant"]].Str(),
			Interrupted:   row[col["interrupted"]].Bool(),
		}
		rep.Runs = append(rep.Runs, r)
	}
	if pt := db.Table(PathsTableName); pt != nil {
		pSchema := pt.Schema()
		pcol := make(map[string]int, len(pSchema))
		for i, c := range pSchema {
			pcol[c.Name] = i
		}
		paths := make(map[string][]Segment)
		for i := 0; i < pt.Len(); i++ {
			row := pt.Row(i)
			key := runKey(row[pcol["forecast"]].Str(), int(row[pcol["day"]].Int()))
			paths[key] = append(paths[key], Segment{
				Seq:   int(row[pcol["seq"]].Int()),
				Kind:  row[pcol["kind"]].Str(),
				Name:  row[pcol["name"]].Str(),
				Node:  row[pcol["node"]].Str(),
				Start: row[pcol["start"]].Float(),
				End:   row[pcol["end"]].Float(),
			})
		}
		for i := range rep.Runs {
			r := &rep.Runs[i]
			p := paths[runKey(r.Forecast, r.Day)]
			sort.Slice(p, func(a, b int) bool { return p[a].Seq < p[b].Seq })
			r.Path = p
		}
	}
	sort.Slice(rep.Runs, func(i, j int) bool {
		if rep.Runs[i].Day != rep.Runs[j].Day {
			return rep.Runs[i].Day < rep.Runs[j].Day
		}
		return rep.Runs[i].Forecast < rep.Runs[j].Forecast
	})
	rep.Days = aggregateDays(rep.Runs)
	return rep, nil
}
