package factory

import (
	"testing"
)

func runScenario(t *testing.T, cfg Config) []RunResult {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run()
}

func walltimeOn(t *testing.T, days []int, wt []float64, day int) float64 {
	t.Helper()
	for i, d := range days {
		if d == day {
			return wt[i]
		}
	}
	t.Fatalf("no finished run on day %d", day)
	return 0
}

func TestFigure8Shape(t *testing.T) {
	results := runScenario(t, Figure8Scenario())
	days, wt := Walltimes(results, "forecast-tillamook")
	if len(days) != 76 {
		t.Fatalf("tillamook finished %d runs, want 76", len(days))
	}

	// Stable ≈40,000 s before day 21.
	for i, d := range days {
		if d < 21 {
			if wt[i] < 38000 || wt[i] > 44000 {
				t.Fatalf("day %d walltime %v, want ≈40000", d, wt[i])
			}
		}
	}
	// Timestep doubling on day 21 roughly doubles the walltime.
	before := walltimeOn(t, days, wt, 20)
	after := walltimeOn(t, days, wt, 21)
	if r := after / before; r < 1.9 || r > 2.1 {
		t.Fatalf("day-21 ratio %v, want ≈2", r)
	}
	// Stable ≈80,000 s in days 25..49.
	for _, d := range []int{25, 35, 45, 49} {
		if v := walltimeOn(t, days, wt, d); v < 76000 || v > 88000 {
			t.Fatalf("day %d walltime %v, want ≈80000", d, v)
		}
	}
	// The hump: day 50 jumps to ≈100,000 s, the cascade pushes later days
	// higher (peak above 110,000 s), and recovery follows the
	// reassignment.
	d50 := walltimeOn(t, days, wt, 50)
	if d50 < 90000 || d50 > 110000 {
		t.Fatalf("day 50 walltime %v, want ≈100000", d50)
	}
	peak := 0.0
	for i, d := range days {
		if d >= 50 && d <= 60 && wt[i] > peak {
			peak = wt[i]
		}
	}
	if peak <= d50 {
		t.Fatalf("no cascade: peak %v not above day-50 %v", peak, d50)
	}
	if peak < 110000 || peak > 140000 {
		t.Fatalf("hump peak %v, want ≈120000-130000", peak)
	}
	// Day boundary exceeded during the hump — the cascade's cause.
	if d50 <= SecondsPerDay {
		t.Fatalf("day-50 walltime %v does not exceed one day (%v)", d50, SecondsPerDay)
	}
	// Recovery: back to ≈80,000 s by day 60 and stable through day 76.
	for _, d := range []int{60, 65, 70, 76} {
		if v := walltimeOn(t, days, wt, d); v < 76000 || v > 88000 {
			t.Fatalf("day %d walltime %v, want recovered ≈80000", d, v)
		}
	}
}

func TestFigure8OtherForecastsUndisturbed(t *testing.T) {
	// The hump is local to Tillamook's node; forecasts elsewhere stay flat.
	results := runScenario(t, Figure8Scenario())
	days, wt := Walltimes(results, "forecast-columbia")
	base := wt[0]
	for i := range days {
		if wt[i] > 1.05*base || wt[i] < 0.95*base {
			t.Fatalf("columbia day %d walltime %v departs from %v", days[i], wt[i], base)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	results := runScenario(t, Figure9Scenario())
	days, wt := Walltimes(results, "forecasts-dev")
	if len(days) != 131 {
		t.Fatalf("dev finished %d runs, want 131", len(days))
	}

	base := walltimeOn(t, days, wt, 145)
	if base < 30000 || base > 35000 {
		t.Fatalf("baseline walltime %v, want ≈32000", base)
	}
	// Day ≈150: mesh + code change, ≈5,000 s faster.
	after150 := walltimeOn(t, days, wt, 155)
	if d := base - after150; d < 3500 || d > 7000 {
		t.Fatalf("day-150 drop = %v, want ≈5000", d)
	}
	// Day ≈160: major code version, ≈26,000 s slower.
	after160 := walltimeOn(t, days, wt, 165)
	if d := after160 - after150; d < 22000 || d > 30000 {
		t.Fatalf("day-160 jump = %v, want ≈26000", d)
	}
	// Day ≈180: code change, ≈7,000 s faster.
	after180 := walltimeOn(t, days, wt, 185)
	if d := after160 - after180; d < 5000 || d > 9000 {
		t.Fatalf("day-180 drop = %v, want ≈7000", d)
	}
	// One-day contention spikes on days 172 and 192.
	for _, spikeDay := range []int{172, 192} {
		spike := walltimeOn(t, days, wt, spikeDay)
		neighbor := walltimeOn(t, days, wt, spikeDay+2)
		if spike-neighbor < 5000 {
			t.Fatalf("day-%d spike = %v vs neighbor %v, want clear spike", spikeDay, spike, neighbor)
		}
		prev := walltimeOn(t, days, wt, spikeDay-2)
		if spike-prev < 5000 {
			t.Fatalf("day-%d spike = %v vs previous %v, want clear spike", spikeDay, spike, prev)
		}
	}
}

func TestScenariosAreValidConfigs(t *testing.T) {
	for _, cfg := range []Config{Figure8Scenario(), Figure9Scenario()} {
		if _, err := New(cfg); err != nil {
			t.Fatal(err)
		}
	}
}
