package factory

import (
	"testing"
)

func TestGrowthScenarioStaysTimelyWithNewNodes(t *testing.T) {
	results := runScenario(t, GrowthScenario())
	// Every launched run finishes, and finishes within its day +
	// reasonable slack (no saturation cascade, thanks to the node
	// additions).
	finished := 0
	for _, r := range results {
		if !r.Finished {
			t.Fatalf("run %s/%d never finished", r.Forecast, r.Day)
		}
		finished++
		if r.Walltime > SecondsPerDay {
			t.Fatalf("run %s/%d walltime %v exceeds a day — plant saturated", r.Forecast, r.Day, r.Walltime)
		}
	}
	if finished < 36*5 { // 36 forecasts exist by the end; sanity floor
		t.Fatalf("only %d runs finished", finished)
	}
}

func TestGrowthScenarioWithoutNewNodesSaturates(t *testing.T) {
	// Strip the AddNode events and dump the late batches onto the old
	// plant: the cascade the long-range plan exists to prevent.
	cfg := GrowthScenario()
	var events []Event
	base := DefaultNodes()
	for _, e := range cfg.Events {
		switch ev := e.(type) {
		case AddNode:
			continue
		case AddForecast:
			ev.Node = base[ev.EventDay()%len(base)].Name
			events = append(events, ev)
		default:
			events = append(events, e)
		}
	}
	cfg.Events = events
	results := runScenario(t, cfg)
	overloaded := 0
	for _, r := range results {
		if r.Finished && r.Walltime > SecondsPerDay {
			overloaded++
		}
		if !r.Finished {
			overloaded++
		}
	}
	if overloaded == 0 {
		t.Fatal("no saturation without the new nodes; scenario too easy")
	}
}

func TestGrowthScenarioForecastCount(t *testing.T) {
	results := runScenario(t, GrowthScenario())
	byDay := map[int]int{}
	for _, r := range results {
		byDay[r.Day]++
	}
	if byDay[1] != 10 {
		t.Fatalf("day 1 launched %d forecasts, want 10", byDay[1])
	}
	if byDay[44] != 36 {
		t.Fatalf("day 44 launched %d forecasts, want 36", byDay[44])
	}
}

func TestAddNodeEvent(t *testing.T) {
	c := smallCampaign(t, 3,
		AddNode{Day: 2, Node: NodeSpec{Name: "fresh", CPUs: 2, Speed: 1}},
		Reassign{Day: 2, Forecast: "f1", Node: "fresh"},
	)
	results := c.Run()
	for _, r := range results {
		if r.Forecast == "f1" && r.Day >= 2 && r.Node != "fresh" {
			t.Fatalf("day %d ran on %s, want fresh", r.Day, r.Node)
		}
	}
	// Invalid or duplicate AddNode events are ignored, not fatal.
	c2 := smallCampaign(t, 2,
		AddNode{Day: 2, Node: NodeSpec{Name: "", CPUs: 2, Speed: 1}},
		AddNode{Day: 2, Node: NodeSpec{Name: "fnode01", CPUs: 2, Speed: 1}},
	)
	c2.Run()
}
