package factory

import (
	"fmt"

	"repro/internal/forecast"
)

// Figure8Scenario reproduces the Tillamook campaign of Figure 8 (days
// 1–76 of 2005):
//
//   - a stable period at ≈40,000 s walltime;
//   - day 21: timesteps doubled 5760 → 11520, walltime ≈80,000 s;
//   - around day 50: several new forecasts added to the factory, some
//     landing on Tillamook's node — the first delayed run crosses the
//     86,400 s day boundary, so the next day's run starts before it
//     finishes and the delay cascades (the "hump");
//   - a few days later the operators move the new forecasts to other
//     nodes, and the walltime decays back to its earlier level.
func Figure8Scenario() Config {
	tillamook := forecast.Tillamook()

	// The rest of the plant: forecasts on other nodes, present so the
	// factory is realistically loaded but not interfering with Tillamook.
	columbia := forecast.NewSpec("forecast-columbia", "columbia", 5760, 28000, 8)
	columbia.StartOffset = 2 * 3600
	yaquina := forecast.NewSpec("forecast-yaquina", "yaquina", 4320, 20000, 6)
	yaquina.StartOffset = 3 * 3600

	// The newcomers of day 50: moderate forecasts initially (mis)placed on
	// Tillamook's node.
	newport := forecast.NewSpec("forecast-newport", "newport", 4320, 18000, 6)
	newport.StartOffset = 3 * 3600
	coosBay := forecast.NewSpec("forecast-coos-bay", "coos-bay", 3600, 18000, 6)
	coosBay.StartOffset = 4 * 3600

	return Config{
		Year: 2005,
		Days: 76,
		Forecasts: []Assignment{
			{Spec: tillamook, Node: "fnode01"},
			{Spec: columbia, Node: "fnode02"},
			{Spec: yaquina, Node: "fnode03"},
		},
		Events: []Event{
			SetTimesteps{Day: 21, Forecast: tillamook.Name, Timesteps: 11520},
			AddForecast{Day: 50, Spec: newport, Node: "fnode01"},
			AddForecast{Day: 50, Spec: coosBay, Node: "fnode01"},
			Reassign{Day: 56, Forecast: newport.Name, Node: "fnode04"},
			Reassign{Day: 56, Forecast: coosBay.Name, Node: "fnode05"},
		},
	}
}

// GrowthScenario models the long-range planning loop of §1: the factory
// grows by batches of new forecasts; when rough-cut utilization
// approaches the plant's capacity the operators commission new nodes and
// spread the load. Without the week-3 and week-5 node additions the
// later forecasts would pile onto saturated nodes and cascade.
func GrowthScenario() Config {
	mk := func(i int) *forecast.Spec {
		s := forecast.NewSpec(
			fmt.Sprintf("forecast-g%02d", i),
			fmt.Sprintf("region-%02d", i),
			2880+(i%4)*720,   // 2880..5040 timesteps
			14000+(i%5)*2000, // 14000..22000 sides
			4,                // products
		)
		s.StartOffset = float64(2+i%4) * 3600
		s.Priority = 1 + i%9
		return s
	}

	// Week 0: ten forecasts on the original six nodes.
	var assignments []Assignment
	baseNodes := DefaultNodes()
	for i := 0; i < 10; i++ {
		assignments = append(assignments, Assignment{
			Spec: mk(i),
			Node: baseNodes[i%len(baseNodes)].Name,
		})
	}

	var events []Event
	// Week 1 and 2: six more forecasts each, onto the existing plant.
	batch := func(day, from, to int, nodes []string) {
		for i := from; i < to; i++ {
			events = append(events, AddForecast{
				Day:  day,
				Spec: mk(i),
				Node: nodes[i%len(nodes)],
			})
		}
	}
	baseNames := make([]string, len(baseNodes))
	for i, n := range baseNodes {
		baseNames[i] = n.Name
	}
	batch(8, 10, 16, baseNames)
	batch(15, 16, 22, baseNames)
	// Week 3: the plant is tight; two nodes are commissioned and the next
	// batch lands on them.
	events = append(events,
		AddNode{Day: 22, Node: NodeSpec{Name: "fnode07", CPUs: 2, Speed: 1.2}},
		AddNode{Day: 22, Node: NodeSpec{Name: "fnode08", CPUs: 2, Speed: 1.2}},
	)
	batch(22, 22, 28, []string{"fnode07", "fnode08"})
	// Week 5: two more nodes, two more batches.
	events = append(events,
		AddNode{Day: 36, Node: NodeSpec{Name: "fnode09", CPUs: 4, Speed: 1.2}},
		AddNode{Day: 36, Node: NodeSpec{Name: "fnode10", CPUs: 4, Speed: 1.2}},
	)
	batch(36, 28, 36, []string{"fnode09", "fnode10"})

	return Config{
		Year:      2006,
		Days:      45,
		Nodes:     baseNodes,
		Forecasts: assignments,
		Events:    events,
	}
}

// Figure9Scenario reproduces the developmental-forecast campaign of
// Figure 9 (days 140–270 of 2005): the dev forecast is continually
// adapted, so code versions and meshes change repeatedly.
//
//   - around day 150: mesh + code version change, ≈5,000 s faster;
//   - around day 160: major code version change, ≈26,000 s slower;
//   - around day 180: code version change, ≈7,000 s faster;
//   - days 172 and 192: one-day contention spikes from other forecasts
//     sharing the node;
//   - several smaller code changes later in the period.
func Figure9Scenario() Config {
	dev := forecast.Dev()

	// A one-day contention spike: two scratch forecasts land on the dev
	// node (a single extra serial run would fit the second CPU and barely
	// interfere; two push the node past its CPU count).
	spike := func(day int, name string) []Event {
		var evs []Event
		for _, suffix := range []string{"-1", "-2"} {
			s := forecast.NewSpec(name+suffix, "scratch", 2880, 22000, 4)
			s.StartOffset = dev.StartOffset
			evs = append(evs,
				AddForecast{Day: day, Spec: s, Node: "fnode02"},
				RemoveForecast{Day: day + 1, Forecast: s.Name},
			)
		}
		return evs
	}

	events := []Event{
		SetMesh{Day: 150, Forecast: dev.Name, Mesh: forecast.Mesh{Name: "dev-mesh-v2", Sides: 16800}},
		SetCode{Day: 150, Forecast: dev.Name, Code: forecast.CodeVersion{Name: "elcirc-dev-r205", CostFactor: 0.95}},
		SetCode{Day: 160, Forecast: dev.Name, Code: forecast.CodeVersion{Name: "elcirc-dev-r300", CostFactor: 1.88}},
		SetCode{Day: 180, Forecast: dev.Name, Code: forecast.CodeVersion{Name: "elcirc-dev-r310", CostFactor: 1.63}},
		SetCode{Day: 205, Forecast: dev.Name, Code: forecast.CodeVersion{Name: "elcirc-dev-r315", CostFactor: 1.55}},
		SetMesh{Day: 225, Forecast: dev.Name, Mesh: forecast.Mesh{Name: "dev-mesh-v3", Sides: 17400}},
		SetCode{Day: 245, Forecast: dev.Name, Code: forecast.CodeVersion{Name: "elcirc-dev-r330", CostFactor: 1.60}},
	}
	events = append(events, spike(172, "forecast-scratch-a")...)
	events = append(events, spike(192, "forecast-scratch-b")...)

	return Config{
		Year:     2005,
		StartDay: 140,
		Days:     131, // days 140–270
		Forecasts: []Assignment{
			{Spec: dev, Node: "fnode02"},
		},
		Events: events,
	}
}
