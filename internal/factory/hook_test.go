package factory

import (
	"testing"

	"repro/internal/logs"
)

func TestOnRunLogHookFiresAtWriteTime(t *testing.T) {
	type event struct {
		status string
		at     float64
		end    float64
	}
	var events []event
	cfg := Config{
		Days: 2,
		Forecasts: []Assignment{
			{Spec: smallSpec("f1"), Node: "fnode01"},
		},
	}
	var c *Campaign
	cfg.OnRunLog = func(r *logs.RunRecord) {
		events = append(events, event{status: r.Status, at: c.Engine().Now(), end: r.End})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()

	var running, completed int
	for _, e := range events {
		switch e.status {
		case logs.StatusRunning:
			running++
		case logs.StatusCompleted:
			completed++
			// The database learns of completion the instant it happens.
			if e.at != e.end {
				t.Errorf("completed record delivered at %v, run ended at %v", e.at, e.end)
			}
		}
	}
	if running != 2 || completed != 2 {
		t.Fatalf("running=%d completed=%d, want 2 and 2", running, completed)
	}
	// Launch records arrive before their completion records.
	if events[0].status != logs.StatusRunning {
		t.Fatalf("first event = %v, want running", events[0].status)
	}
}
