package factory

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/statsdb"
	"repro/internal/telemetry"
)

// telemetryCampaign runs a 2-day, 2-forecast campaign with collection on.
func telemetryCampaign(t *testing.T) (*Campaign, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New()
	c, err := New(Config{
		Days: 2,
		Forecasts: []Assignment{
			{Spec: smallSpec("f1"), Node: "fnode01"},
			{Spec: smallSpec("f2"), Node: "fnode02"},
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	return c, tel
}

func TestCampaignMetrics(t *testing.T) {
	_, tel := telemetryCampaign(t)
	reg := tel.Registry()

	if v := reg.Counter("factory_launches_total", telemetry.Labels{"forecast": "f1"}).Value(); v != 2 {
		t.Fatalf("f1 launches = %v, want 2", v)
	}
	if v := reg.Counter("factory_runs_completed_total", telemetry.Labels{"forecast": "f2"}).Value(); v != 2 {
		t.Fatalf("f2 completions = %v, want 2", v)
	}
	if v := reg.Gauge("factory_active_runs", nil).Value(); v != 0 {
		t.Fatalf("active runs at end = %v, want 0", v)
	}
	if n := reg.Histogram("factory_run_walltime_seconds", nil, nil).Count(); n != 4 {
		t.Fatalf("walltime observations = %d, want 4", n)
	}
	if v := reg.Counter("sim_events_fired_total", nil).Value(); v <= 0 {
		t.Fatalf("sim events = %v, want > 0", v)
	}
	if v := reg.Counter("workflow_master_polls_total", nil).Value(); v <= 0 {
		t.Fatalf("master polls = %v, want > 0", v)
	}
}

func TestCampaignSpanHierarchyAndChromeTrace(t *testing.T) {
	_, tel := telemetryCampaign(t)
	spans := tel.Trace().Spans()

	byCat := map[string]int{}
	byID := map[int64]telemetry.Span{}
	for _, s := range spans {
		byCat[s.Cat]++
		byID[s.ID] = s
	}
	if byCat["campaign"] != 1 || byCat["day"] != 2 || byCat["run"] != 4 || byCat["simulation"] != 4 {
		t.Fatalf("span census = %v, want 1 campaign, 2 days, 4 runs, 4 simulations", byCat)
	}
	if byCat["product"] == 0 {
		t.Fatalf("no product-task spans recorded")
	}
	// Every span chains up to the campaign root.
	for _, s := range spans {
		if !s.Finished() {
			t.Fatalf("span %s (%s) left unfinished", s.Name, s.Cat)
		}
		cur := s
		for cur.Parent != 0 {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s has dangling parent %d", s.Name, cur.Parent)
			}
			cur = p
		}
		if cur.Cat != "campaign" {
			t.Fatalf("span %s roots at %q, want the campaign span", s.Name, cur.Cat)
		}
	}

	// The exported trace is valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := tel.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

func TestCampaignSpansLoadIntoStatsdb(t *testing.T) {
	_, tel := telemetryCampaign(t)
	db := statsdb.NewDB()
	if _, err := statsdb.LoadSpans(db, tel.Trace().Spans()); err != nil {
		t.Fatal(err)
	}

	// The trace answers scheduling questions over SQL: which forecasts ran
	// and how long their runs took on each node.
	res, err := db.Query("SELECT forecast, COUNT(*), AVG(duration) FROM spans WHERE cat = 'run' GROUP BY forecast ORDER BY forecast ASC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want 2 forecasts", res.Rows)
	}
	for i, want := range []string{"f1", "f2"} {
		row := res.Rows[i]
		if row[0].Str() != want || row[1].Int() != 2 {
			t.Fatalf("row %d = %v, want forecast %s with 2 runs", i, row, want)
		}
		if row[2].Float() <= 0 {
			t.Fatalf("%s mean run duration = %v, want > 0", want, row[2].Float())
		}
	}

	// Run spans line up with the nodes they were pinned to.
	for _, fc := range []struct{ name, node string }{{"f1", "fnode01"}, {"f2", "fnode02"}} {
		q := fmt.Sprintf("SELECT node FROM spans WHERE cat = 'run' AND forecast = '%s'", fc.name)
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row[0].Str() != fc.node {
				t.Fatalf("%s ran on %s, want %s", fc.name, row[0].Str(), fc.node)
			}
		}
	}
}
