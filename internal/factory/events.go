package factory

import (
	"fmt"

	"repro/internal/forecast"
)

// Event is a change to the factory configuration applied at midnight of a
// given day, before that day's launches: the dynamics §2.1 of the paper
// describes (forecasts continually added and modified; timestep, mesh, and
// code-version changes; node failures and reassignment).
type Event interface {
	// EventDay returns the day of year the event applies on.
	EventDay() int
	apply(c *Campaign)
	fmt.Stringer
}

// SetTimesteps changes a forecast's timestep count (e.g. Figure 8, day 21:
// Tillamook doubled from 5760 to 11520).
type SetTimesteps struct {
	Day       int
	Forecast  string
	Timesteps int
}

// EventDay implements Event.
func (e SetTimesteps) EventDay() int { return e.Day }

func (e SetTimesteps) apply(c *Campaign) {
	if s := c.specs[e.Forecast]; s != nil && e.Timesteps > 0 {
		s.Timesteps = e.Timesteps
	}
}

func (e SetTimesteps) String() string {
	return fmt.Sprintf("day %d: %s timesteps → %d", e.Day, e.Forecast, e.Timesteps)
}

// SetCode deploys a new simulation code version for a forecast.
type SetCode struct {
	Day      int
	Forecast string
	Code     forecast.CodeVersion
}

// EventDay implements Event.
func (e SetCode) EventDay() int { return e.Day }

func (e SetCode) apply(c *Campaign) {
	if s := c.specs[e.Forecast]; s != nil && e.Code.CostFactor > 0 {
		s.Code = e.Code
	}
}

func (e SetCode) String() string {
	return fmt.Sprintf("day %d: %s code → %s (×%.2f)", e.Day, e.Forecast, e.Code.Name, e.Code.CostFactor)
}

// SetMesh changes a forecast's mesh.
type SetMesh struct {
	Day      int
	Forecast string
	Mesh     forecast.Mesh
}

// EventDay implements Event.
func (e SetMesh) EventDay() int { return e.Day }

func (e SetMesh) apply(c *Campaign) {
	if s := c.specs[e.Forecast]; s != nil && e.Mesh.Sides > 0 {
		s.Mesh = e.Mesh
	}
}

func (e SetMesh) String() string {
	return fmt.Sprintf("day %d: %s mesh → %s (%d sides)", e.Day, e.Forecast, e.Mesh.Name, e.Mesh.Sides)
}

// AddForecast introduces a new forecast to the factory on a node.
type AddForecast struct {
	Day  int
	Spec *forecast.Spec
	Node string
}

// EventDay implements Event.
func (e AddForecast) EventDay() int { return e.Day }

func (e AddForecast) apply(c *Campaign) {
	if e.Spec == nil || c.cluster.Node(e.Node) == nil {
		return
	}
	if _, exists := c.specs[e.Spec.Name]; exists {
		return
	}
	c.specs[e.Spec.Name] = e.Spec.Clone()
	c.assign[e.Spec.Name] = e.Node
	c.order = append(c.order, e.Spec.Name)
}

func (e AddForecast) String() string {
	name := "?"
	if e.Spec != nil {
		name = e.Spec.Name
	}
	return fmt.Sprintf("day %d: add forecast %s on %s", e.Day, name, e.Node)
}

// RemoveForecast retires a forecast: no further daily launches. Runs
// already executing are left to finish.
type RemoveForecast struct {
	Day      int
	Forecast string
}

// EventDay implements Event.
func (e RemoveForecast) EventDay() int { return e.Day }

func (e RemoveForecast) apply(c *Campaign) {
	delete(c.specs, e.Forecast)
	delete(c.assign, e.Forecast)
	for i, n := range c.order {
		if n == e.Forecast {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

func (e RemoveForecast) String() string {
	return fmt.Sprintf("day %d: remove forecast %s", e.Day, e.Forecast)
}

// Reassign moves a forecast's future runs to a different node — the
// operator response that ends the Figure 8 hump.
type Reassign struct {
	Day      int
	Forecast string
	Node     string
}

// EventDay implements Event.
func (e Reassign) EventDay() int { return e.Day }

func (e Reassign) apply(c *Campaign) {
	if _, ok := c.specs[e.Forecast]; ok && c.cluster.Node(e.Node) != nil {
		c.assign[e.Forecast] = e.Node
	}
}

func (e Reassign) String() string {
	return fmt.Sprintf("day %d: reassign %s → %s", e.Day, e.Forecast, e.Node)
}

// DelayInput postpones one day's launch of a forecast by Delta seconds —
// the real-time observation inputs (river flows, atmospheric forcings)
// arrived late that morning. The delay applies to that day only.
type DelayInput struct {
	Day      int
	Forecast string
	Delta    float64
}

// EventDay implements Event.
func (e DelayInput) EventDay() int { return e.Day }

func (e DelayInput) apply(c *Campaign) {
	if e.Delta > 0 {
		c.inputDelays[e.Forecast] += e.Delta
	}
}

func (e DelayInput) String() string {
	return fmt.Sprintf("day %d: %s inputs delayed %.0f s", e.Day, e.Forecast, e.Delta)
}

// AddNode brings a new compute node online at midnight — the long-range
// capacity response as the factory grows toward 50–100 forecasts ("new
// nodes will be added as the number of forecasts grows").
type AddNode struct {
	Day  int
	Node NodeSpec
}

// EventDay implements Event.
func (e AddNode) EventDay() int { return e.Day }

func (e AddNode) apply(c *Campaign) {
	if e.Node.Name == "" || e.Node.CPUs <= 0 || e.Node.Speed <= 0 {
		return
	}
	if c.cluster.Node(e.Node.Name) != nil {
		return
	}
	c.cluster.AddNode(e.Node.Name, e.Node.CPUs, e.Node.Speed)
}

func (e AddNode) String() string {
	return fmt.Sprintf("day %d: add node %s (%d CPUs, speed %.2f)", e.Day, e.Node.Name, e.Node.CPUs, e.Node.Speed)
}

// FailNode takes a node down at midnight; runs on it freeze in place.
type FailNode struct {
	Day  int
	Node string
}

// EventDay implements Event.
func (e FailNode) EventDay() int { return e.Day }

func (e FailNode) apply(c *Campaign) {
	if n := c.cluster.Node(e.Node); n != nil {
		n.Fail()
	}
}

func (e FailNode) String() string { return fmt.Sprintf("day %d: node %s fails", e.Day, e.Node) }

// RepairNode brings a failed node back at midnight.
type RepairNode struct {
	Day  int
	Node string
}

// EventDay implements Event.
func (e RepairNode) EventDay() int { return e.Day }

func (e RepairNode) apply(c *Campaign) {
	if n := c.cluster.Node(e.Node); n != nil {
		n.Repair()
	}
}

func (e RepairNode) String() string { return fmt.Sprintf("day %d: node %s repaired", e.Day, e.Node) }
