package factory

import (
	"math"
	"testing"

	"repro/internal/forecast"
	"repro/internal/logs"
)

// smallSpec builds a quick forecast for campaign tests (sim ≈ 2222 s).
func smallSpec(name string) *forecast.Spec {
	s := forecast.NewSpec(name, "r", 960, 10000, 2)
	s.StartOffset = 3600
	return s
}

func smallCampaign(t *testing.T, days int, events ...Event) *Campaign {
	t.Helper()
	c, err := New(Config{
		Days: days,
		Forecasts: []Assignment{
			{Spec: smallSpec("f1"), Node: "fnode01"},
			{Spec: smallSpec("f2"), Node: "fnode02"},
		},
		Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignRunsEveryForecastEveryDay(t *testing.T) {
	c := smallCampaign(t, 5)
	results := c.Run()
	if len(results) != 10 {
		t.Fatalf("got %d results, want 10", len(results))
	}
	for _, r := range results {
		if !r.Finished {
			t.Fatalf("run %s/%d did not finish", r.Forecast, r.Day)
		}
		if r.Walltime <= 0 || math.IsNaN(r.Walltime) {
			t.Fatalf("run %s/%d walltime %v", r.Forecast, r.Day, r.Walltime)
		}
		// Launch honors the start offset.
		wantStart := float64(r.Day-1)*SecondsPerDay + 3600
		if math.Abs(r.Start-wantStart) > 1e-6 {
			t.Fatalf("run %s/%d started at %v, want %v", r.Forecast, r.Day, r.Start, wantStart)
		}
	}
}

func TestStableWalltimesWithoutEvents(t *testing.T) {
	c := smallCampaign(t, 6)
	results := c.Run()
	days, wt := Walltimes(results, "f1")
	if len(days) != 6 {
		t.Fatalf("got %d days", len(days))
	}
	for i := 1; i < len(wt); i++ {
		if math.Abs(wt[i]-wt[0]) > 1 {
			t.Fatalf("walltime drifted: %v", wt)
		}
	}
}

func TestTimestepChangeScalesWalltime(t *testing.T) {
	c := smallCampaign(t, 6, SetTimesteps{Day: 4, Forecast: "f1", Timesteps: 1920})
	results := c.Run()
	_, wt := Walltimes(results, "f1")
	before, after := wt[2], wt[4]
	ratio := after / before
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("walltime ratio after timestep doubling = %v, want ≈2", ratio)
	}
	// Result metadata records the change.
	for _, r := range results {
		if r.Forecast == "f1" && r.Day >= 4 && r.Timesteps != 1920 {
			t.Fatalf("day %d records timesteps %d", r.Day, r.Timesteps)
		}
	}
}

func TestCodeAndMeshChangesScaleWalltime(t *testing.T) {
	c := smallCampaign(t, 6,
		SetCode{Day: 3, Forecast: "f1", Code: forecast.CodeVersion{Name: "v2", CostFactor: 1.5}},
		SetMesh{Day: 5, Forecast: "f1", Mesh: forecast.Mesh{Name: "m2", Sides: 5000}},
	)
	results := c.Run()
	_, wt := Walltimes(results, "f1")
	if r := wt[2] / wt[0]; r < 1.4 || r > 1.6 {
		t.Fatalf("code-change ratio = %v, want ≈1.5", r)
	}
	if r := wt[4] / wt[2]; r < 0.45 || r > 0.60 {
		t.Fatalf("mesh-change ratio = %v, want ≈0.5", r)
	}
}

func TestAddAndRemoveForecast(t *testing.T) {
	extra := smallSpec("f3")
	c := smallCampaign(t, 6,
		AddForecast{Day: 3, Spec: extra, Node: "fnode03"},
		RemoveForecast{Day: 5, Forecast: "f3"},
	)
	results := c.Run()
	days, _ := Walltimes(results, "f3")
	if len(days) != 2 || days[0] != 3 || days[1] != 4 {
		t.Fatalf("f3 ran on days %v, want [3 4]", days)
	}
}

func TestReassignMovesRuns(t *testing.T) {
	c := smallCampaign(t, 4, Reassign{Day: 3, Forecast: "f1", Node: "fnode06"})
	results := c.Run()
	for _, r := range results {
		if r.Forecast != "f1" {
			continue
		}
		want := "fnode01"
		if r.Day >= 3 {
			want = "fnode06"
		}
		if r.Node != want {
			t.Fatalf("day %d on node %s, want %s", r.Day, r.Node, want)
		}
	}
}

func TestColocationContentionRaisesWalltime(t *testing.T) {
	// Two extra forecasts on f1's node exceed its two CPUs.
	e1, e2 := smallSpec("g1"), smallSpec("g2")
	c := smallCampaign(t, 4,
		AddForecast{Day: 3, Spec: e1, Node: "fnode01"},
		AddForecast{Day: 3, Spec: e2, Node: "fnode01"},
	)
	results := c.Run()
	_, wt := Walltimes(results, "f1")
	if wt[2] <= wt[1]*1.2 {
		t.Fatalf("contended walltime %v not clearly above baseline %v", wt[2], wt[1])
	}
}

func TestNodeFailureFreezesAndCascades(t *testing.T) {
	c := smallCampaign(t, 4,
		FailNode{Day: 2, Node: "fnode01"},
		RepairNode{Day: 3, Node: "fnode01"},
	)
	results := c.Run()
	_, wt := Walltimes(results, "f1")
	// Day 2's run launches at +3600 into a dead node and waits until the
	// day-3 repair: walltime ≈ (86400 − 3600) + normal run time.
	if wt[1] < SecondsPerDay-3600 {
		t.Fatalf("failed-node day walltime = %v, want ≈ one day", wt[1])
	}
	// Day 4 back to normal.
	if math.Abs(wt[3]-wt[0]) > 0.25*wt[0] {
		t.Fatalf("post-repair walltime %v far from baseline %v", wt[3], wt[0])
	}
}

func TestDelayInputShiftsOneDayOnly(t *testing.T) {
	c := smallCampaign(t, 3, DelayInput{Day: 2, Forecast: "f1", Delta: 7200})
	results := c.Run()
	for _, r := range results {
		if r.Forecast != "f1" {
			continue
		}
		wantStart := float64(r.Day-1)*SecondsPerDay + 3600
		if r.Day == 2 {
			wantStart += 7200
		}
		if math.Abs(r.Start-wantStart) > 1e-6 {
			t.Fatalf("day %d start %v, want %v", r.Day, r.Start, wantStart)
		}
	}
	// f2 unaffected.
	for _, r := range results {
		if r.Forecast == "f2" && math.Abs(r.Start-(float64(r.Day-1)*SecondsPerDay+3600)) > 1e-6 {
			t.Fatalf("f2 day %d start %v shifted", r.Day, r.Start)
		}
	}
}

func TestRunLogsWrittenAndCrawlable(t *testing.T) {
	c := smallCampaign(t, 3)
	c.Run()
	records, err := logs.Crawl(c.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("crawled %d records, want 6", len(records))
	}
	for _, r := range records {
		if r.Status != logs.StatusCompleted {
			t.Fatalf("record %s/%d status %s", r.Forecast, r.Day, r.Status)
		}
		if r.Walltime <= 0 || r.Node == "" || r.Timesteps != 960 {
			t.Fatalf("record incomplete: %+v", r)
		}
	}
}

func TestUnfinishedRunsRecordedAsRunning(t *testing.T) {
	// A forecast too large to finish within the campaign window stays
	// marked running, with NaN walltime in results.
	big := forecast.NewSpec("huge", "r", 96000, 60000, 1)
	big.Products = nil
	c, err := New(Config{
		Days:      1,
		DrainDays: 1,
		Forecasts: []Assignment{{Spec: big, Node: "fnode01"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := c.Run()
	if len(results) != 1 || results[0].Finished || !math.IsNaN(results[0].Walltime) {
		t.Fatalf("results = %+v", results)
	}
	records, err := logs.Crawl(c.FS(), "/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Status != logs.StatusRunning {
		t.Fatalf("records = %+v", records)
	}
}

func TestConfigValidation(t *testing.T) {
	good := smallSpec("f")
	cases := []Config{
		{Days: 0, Forecasts: []Assignment{{Spec: good, Node: "fnode01"}}},
		{Days: 1, Forecasts: []Assignment{{Spec: good, Node: "nope"}}},
		{Days: 1, Forecasts: []Assignment{{Spec: good, Node: "fnode01"}, {Spec: good, Node: "fnode02"}}},
		{Days: 1, Events: []Event{SetTimesteps{Day: 99, Forecast: "f", Timesteps: 10}}},
		{Days: 1, Forecasts: []Assignment{{Spec: &forecast.Spec{Name: "bad"}, Node: "fnode01"}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestEventStrings(t *testing.T) {
	events := []Event{
		SetTimesteps{Day: 1, Forecast: "f", Timesteps: 10},
		SetCode{Day: 1, Forecast: "f", Code: forecast.CodeVersion{Name: "v", CostFactor: 1}},
		SetMesh{Day: 1, Forecast: "f", Mesh: forecast.Mesh{Name: "m", Sides: 10}},
		AddForecast{Day: 1, Spec: smallSpec("f"), Node: "n"},
		AddForecast{Day: 1, Node: "n"},
		RemoveForecast{Day: 1, Forecast: "f"},
		Reassign{Day: 1, Forecast: "f", Node: "n"},
		FailNode{Day: 1, Node: "n"},
		RepairNode{Day: 1, Node: "n"},
	}
	for _, e := range events {
		if e.String() == "" || e.EventDay() != 1 {
			t.Fatalf("event %T misbehaves", e)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := smallCampaign(t, 1)
	if c.Spec("f1") == nil || c.Spec("zz") != nil {
		t.Fatal("Spec accessor wrong")
	}
	if c.AssignedNode("f1") != "fnode01" {
		t.Fatal("AssignedNode wrong")
	}
	if c.Engine() == nil || c.FS() == nil || c.Cluster() == nil {
		t.Fatal("nil accessors")
	}
}

func TestDefaultNodes(t *testing.T) {
	nodes := DefaultNodes()
	if len(nodes) != 6 {
		t.Fatalf("len = %d, want 6 (paper: six dedicated nodes)", len(nodes))
	}
	for _, n := range nodes {
		if n.CPUs != 2 {
			t.Fatalf("node %s has %d CPUs, want 2", n.Name, n.CPUs)
		}
	}
}
