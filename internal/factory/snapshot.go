package factory

import (
	"sort"

	"repro/internal/plot"
)

// ActiveRun describes one currently executing run — the top half of the
// ForeMan interface (Figure 3), which "displays both currently executing
// forecasts and those scheduled to run in the near future".
type ActiveRun struct {
	Forecast string
	Day      int
	Node     string
	Started  float64
	// SimProgress is the fraction of simulation increments completed.
	SimProgress float64
}

// ScheduledRun is a forecast launch that has not happened yet.
type ScheduledRun struct {
	Forecast string
	Day      int
	Node     string
	Start    float64 // campaign time of the scheduled launch
}

// Snapshot captures the factory's state at the engine's current time.
type Snapshot struct {
	Now       float64
	Active    []ActiveRun
	Scheduled []ScheduledRun // launches within the next day
	Completed []RunResult    // runs finished so far
}

// Snapshot returns the current factory state. It is typically used
// between Prepare and Finish, driving the engine with RunUntil to the
// moment of interest.
func (c *Campaign) Snapshot() Snapshot {
	now := c.eng.Now()
	s := Snapshot{Now: now}
	for key, run := range c.active {
		name, day := splitRunKey(key)
		s.Active = append(s.Active, ActiveRun{
			Forecast:    name,
			Day:         day,
			Node:        run.Node().Name(),
			Started:     run.Started(),
			SimProgress: run.SimProgress(),
		})
	}
	sort.Slice(s.Active, func(i, j int) bool {
		if s.Active[i].Forecast != s.Active[j].Forecast {
			return s.Active[i].Forecast < s.Active[j].Forecast
		}
		return s.Active[i].Day < s.Active[j].Day
	})
	// Upcoming launches: today's not-yet-started forecasts and tomorrow's.
	lastDay := c.cfg.StartDay + c.cfg.Days - 1
	for day := c.dayOf(now); day <= lastDay && day <= c.dayOf(now)+1; day++ {
		if day < c.cfg.StartDay {
			continue
		}
		for _, name := range c.order {
			spec := c.specs[name]
			if spec == nil {
				continue
			}
			launch := c.dayTime(day) + spec.StartOffset
			if launch <= now {
				continue
			}
			s.Scheduled = append(s.Scheduled, ScheduledRun{
				Forecast: name,
				Day:      day,
				Node:     c.assign[name],
				Start:    launch,
			})
		}
	}
	sort.Slice(s.Scheduled, func(i, j int) bool {
		if s.Scheduled[i].Start != s.Scheduled[j].Start {
			return s.Scheduled[i].Start < s.Scheduled[j].Start
		}
		return s.Scheduled[i].Forecast < s.Scheduled[j].Forecast
	})
	for _, r := range c.results {
		if r.Finished {
			s.Completed = append(s.Completed, r)
		}
	}
	sort.Slice(s.Completed, func(i, j int) bool {
		if s.Completed[i].Forecast != s.Completed[j].Forecast {
			return s.Completed[i].Forecast < s.Completed[j].Forecast
		}
		return s.Completed[i].Day < s.Completed[j].Day
	})
	return s
}

// dayOf maps campaign time to day of year.
func (c *Campaign) dayOf(t float64) int {
	return c.cfg.StartDay + int(t/SecondsPerDay)
}

// Gantt renders the snapshot as the ForeMan monitoring display: recent
// completed runs, executing runs (extrapolated to a predicted end from
// simulation progress), and upcoming launches, with the now-line.
func (s Snapshot) Gantt(width int) string {
	var bars []plot.GanttBar
	horizon := s.Now + SecondsPerDay
	for _, r := range s.Completed {
		if r.End < s.Now-SecondsPerDay {
			continue // off the left edge
		}
		bars = append(bars, plot.GanttBar{
			Node: r.Node, Run: r.Forecast, Start: r.Start, End: r.End,
		})
	}
	for _, a := range s.Active {
		end := horizon
		if a.SimProgress > 0 {
			predicted := a.Started + (s.Now-a.Started)/a.SimProgress
			if predicted < end {
				end = predicted
			}
		}
		bars = append(bars, plot.GanttBar{
			Node: a.Node, Run: a.Forecast, Start: a.Started, End: end,
		})
	}
	for _, sc := range s.Scheduled {
		if sc.Start > horizon {
			continue
		}
		bars = append(bars, plot.GanttBar{
			Node: sc.Node, Run: sc.Forecast, Start: sc.Start,
			End: sc.Start + 3600, // placeholder width; estimates come from ForeMan
		})
	}
	return plot.Gantt{
		Title:   "factory monitor",
		Bars:    bars,
		Now:     s.Now,
		Width:   width,
		Horizon: horizon,
	}.Render()
}

// splitRunKey parses the "<forecast>/<day>" keys of the active map.
func splitRunKey(key string) (string, int) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			day := 0
			for _, c := range key[i+1:] {
				day = day*10 + int(c-'0')
			}
			return key[:i], day
		}
	}
	return key, 0
}
