package factory

import (
	"strings"
	"testing"
)

func TestSnapshotMidDayShowsActiveRuns(t *testing.T) {
	c := smallCampaign(t, 3)
	c.Prepare()
	// Runs launch at +3600 and take ≈2,800 s (with co-location slowdown);
	// at +4,000 both are executing.
	c.Engine().RunUntil(4000)
	s := c.Snapshot()
	if s.Now != 4000 {
		t.Fatalf("Now = %v", s.Now)
	}
	if len(s.Active) != 2 {
		t.Fatalf("active = %+v, want 2 runs", s.Active)
	}
	for _, a := range s.Active {
		if a.Day != 1 || a.Started != 3600 {
			t.Fatalf("active run %+v", a)
		}
		if a.SimProgress <= 0 || a.SimProgress >= 1 {
			t.Fatalf("SimProgress = %v, want mid-run", a.SimProgress)
		}
	}
	if len(s.Completed) != 0 {
		t.Fatalf("completed = %v", s.Completed)
	}
	// Tomorrow's launches are visible.
	if len(s.Scheduled) != 2 {
		t.Fatalf("scheduled = %+v", s.Scheduled)
	}
	for _, sc := range s.Scheduled {
		if sc.Day != 2 || sc.Start != SecondsPerDay+3600 {
			t.Fatalf("scheduled %+v", sc)
		}
	}
	// The campaign still finishes normally afterwards.
	results := c.Finish()
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestSnapshotAfterCompletionListsCompleted(t *testing.T) {
	c := smallCampaign(t, 2)
	c.Prepare()
	c.Engine().RunUntil(SecondsPerDay - 100) // day 1 done, day 2 not launched
	s := c.Snapshot()
	if len(s.Active) != 0 {
		t.Fatalf("active = %+v", s.Active)
	}
	if len(s.Completed) != 2 {
		t.Fatalf("completed = %+v", s.Completed)
	}
	c.Finish()
}

func TestSnapshotGanttRenders(t *testing.T) {
	c := smallCampaign(t, 2)
	c.Prepare()
	c.Engine().RunUntil(4500)
	out := c.Snapshot().Gantt(60)
	for _, want := range []string{"factory monitor", "fnode01", "fnode02", "f1", "f2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	c.Finish()
}

func TestRunIsPrepareThenFinish(t *testing.T) {
	a := smallCampaign(t, 2)
	b := smallCampaign(t, 2)
	ra := a.Run()
	b.Prepare()
	b.Prepare() // idempotent
	rb := b.Finish()
	if len(ra) != len(rb) {
		t.Fatalf("result counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Forecast != rb[i].Forecast || ra[i].Walltime != rb[i].Walltime {
			t.Fatalf("results differ at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestSplitRunKey(t *testing.T) {
	name, day := splitRunKey("forecast-tillamook/21")
	if name != "forecast-tillamook" || day != 21 {
		t.Fatalf("got %q, %d", name, day)
	}
	name, day = splitRunKey("weird")
	if name != "weird" || day != 0 {
		t.Fatalf("got %q, %d", name, day)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	// Two identical campaigns produce bit-identical results — the
	// reproducibility DESIGN.md promises.
	r1 := runScenario(t, Figure9Scenario())
	r2 := runScenario(t, Figure9Scenario())
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		a, b := r1[i], r2[i]
		if a.Forecast != b.Forecast || a.Day != b.Day || a.Walltime != b.Walltime ||
			a.Start != b.Start || a.Node != b.Node {
			t.Fatalf("results differ at %d: %+v vs %+v", i, a, b)
		}
	}
}
