// Package factory runs multi-day production campaigns of the CORIE
// forecast factory: every day each forecast launches on its assigned node
// at its input-constrained start time, executes its simulation and product
// workflows, and writes a run log into its run directory.
//
// The campaign reproduces the dynamics §4.3.1 of the paper observes in a
// year of production logs: work-in-progress carry-over (a run that takes
// longer than a day contends with the next day's run on the same node and
// delays it further — the cascading "hump" of Figure 8), and step changes
// in running time from timestep, mesh, and code-version changes
// (Figures 8 and 9).
package factory

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/forecast"
	"repro/internal/logs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
	"repro/internal/workflow"
)

// SecondsPerDay is one factory day.
const SecondsPerDay = 86400.0

// NodeSpec declares a compute node for a campaign.
type NodeSpec struct {
	Name  string
	CPUs  int
	Speed float64
}

// DefaultNodes returns the paper's plant: six dedicated dual-CPU forecast
// nodes of equal speed.
func DefaultNodes() []NodeSpec {
	nodes := make([]NodeSpec, 6)
	for i := range nodes {
		nodes[i] = NodeSpec{Name: fmt.Sprintf("fnode%02d", i+1), CPUs: 2, Speed: 1.0}
	}
	return nodes
}

// Config describes a campaign.
type Config struct {
	Nodes []NodeSpec
	// Forecasts maps each initial forecast spec to its assigned node.
	Forecasts []Assignment
	// Events are day-keyed changes applied at midnight before launches.
	Events []Event
	// Year labels run directories and logs (e.g. 2005).
	Year int
	// StartDay is the first day of year simulated (1-based, default 1).
	StartDay int
	// Days is the number of days to simulate.
	Days int
	// DrainDays allows runs still executing after the last day this many
	// extra days to finish before the campaign stops (default 3).
	DrainDays int

	// Run execution parameters (defaults as in package workflow).
	Increments int
	Workers    int
	Poll       float64

	// OnRunLog, when set, is invoked with every run record the factory
	// writes (both the provisional "running" record at launch and the
	// final "completed" one) at the virtual time it is written. This
	// models §4.3.2's alternative to periodic crawling: "inserting
	// commands into the run scripts to update the database", which keeps
	// statistics on currently running forecasts accurate.
	OnRunLog func(*logs.RunRecord)

	// Telemetry, when non-nil, collects campaign metrics and the span
	// hierarchy campaign → day → run → {simulation, product task}. The
	// campaign installs its engine clock on the tracer.
	Telemetry *telemetry.Telemetry
}

// Assignment binds a forecast spec to a node.
type Assignment struct {
	Spec *forecast.Spec
	Node string
}

// RunResult records one day's execution of one forecast.
type RunResult struct {
	Forecast  string
	Day       int // day of year
	Node      string
	Start     float64 // campaign time, seconds
	End       float64 // campaign time, seconds (NaN if never finished)
	Walltime  float64 // seconds (NaN if never finished)
	Timesteps int
	MeshName  string
	MeshSides int
	Code      forecast.CodeVersion
	Finished  bool
	Dropped   bool
}

// Campaign executes a Config. Create with New, then call Run.
type Campaign struct {
	cfg     Config
	eng     *sim.Engine
	sched   sim.Scope // day/launch timers, labeled "factory" for the kernel profiler
	cluster *cluster.Cluster
	fs      *vfs.FS

	specs  map[string]*forecast.Spec
	assign map[string]string
	order  []string // forecast launch order (stable)

	events      map[int][]Event
	results     []RunResult
	active      map[string]*workflow.Run
	inputDelays map[string]float64 // per-forecast, today only
	prepared    bool

	// Telemetry wiring (all nil when cfg.Telemetry is nil).
	campaignSpan *telemetry.Span
	daySpan      *telemetry.Span
	runSpans     map[string]*telemetry.Span // keyed like active
	mActiveRuns  *telemetry.Gauge
	mCarryOver   *telemetry.Gauge
	mWalltimes   *telemetry.Histogram
}

// New validates the config and builds a campaign.
func New(cfg Config) (*Campaign, error) {
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = DefaultNodes()
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("factory: campaign needs positive Days, got %d", cfg.Days)
	}
	if cfg.StartDay <= 0 {
		cfg.StartDay = 1
	}
	if cfg.Year == 0 {
		cfg.Year = 2005
	}
	if cfg.DrainDays <= 0 {
		cfg.DrainDays = 3
	}

	eng := sim.NewEngine()
	c := &Campaign{
		cfg:         cfg,
		eng:         eng,
		sched:       eng.Scope("factory"),
		cluster:     cluster.New(eng),
		fs:          vfs.New(eng.Now),
		specs:       make(map[string]*forecast.Spec),
		assign:      make(map[string]string),
		events:      make(map[int][]Event),
		active:      make(map[string]*workflow.Run),
		inputDelays: make(map[string]float64),
	}
	if tel := cfg.Telemetry; tel != nil {
		tel.SetClock(eng.Now)
		reg := tel.Registry()
		eng.Instrument(reg)
		reg.Describe("factory_launches_total", "Forecast runs launched, by forecast.")
		reg.Describe("factory_runs_completed_total", "Forecast runs completed, by forecast.")
		reg.Describe("factory_events_applied_total", "Day-keyed configuration events applied, by event type.")
		reg.Describe("factory_active_runs", "Runs currently executing.")
		reg.Describe("factory_wip_carryover", "Runs still executing at midnight — the WIP carry-over of §4.3.1.")
		reg.Describe("factory_run_walltime_seconds", "Completed run walltimes.")
		c.runSpans = make(map[string]*telemetry.Span)
		c.mActiveRuns = reg.Gauge("factory_active_runs", nil)
		c.mCarryOver = reg.Gauge("factory_wip_carryover", nil)
		c.mWalltimes = reg.Histogram("factory_run_walltime_seconds", nil, nil)
	}
	for _, ns := range cfg.Nodes {
		c.cluster.AddNode(ns.Name, ns.CPUs, ns.Speed)
	}
	for _, a := range cfg.Forecasts {
		if err := a.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("factory: %w", err)
		}
		if _, dup := c.specs[a.Spec.Name]; dup {
			return nil, fmt.Errorf("factory: duplicate forecast %q", a.Spec.Name)
		}
		if c.cluster.Node(a.Node) == nil {
			return nil, fmt.Errorf("factory: forecast %q assigned to unknown node %q", a.Spec.Name, a.Node)
		}
		c.specs[a.Spec.Name] = a.Spec.Clone()
		c.assign[a.Spec.Name] = a.Node
		c.order = append(c.order, a.Spec.Name)
	}
	for _, ev := range cfg.Events {
		d := ev.EventDay()
		if d < cfg.StartDay || d >= cfg.StartDay+cfg.Days {
			return nil, fmt.Errorf("factory: event %q on day %d outside campaign days [%d, %d)",
				ev, d, cfg.StartDay, cfg.StartDay+cfg.Days)
		}
		c.events[d] = append(c.events[d], ev)
	}
	return c, nil
}

// Engine exposes the campaign's simulation engine (read-only use).
func (c *Campaign) Engine() *sim.Engine { return c.eng }

// StartDay returns the first simulated day of year (1-based).
func (c *Campaign) StartDay() int { return c.cfg.StartDay }

// Horizon returns the virtual time at which the campaign stops: midnight
// after the last simulated day plus the drain allowance.
func (c *Campaign) Horizon() float64 {
	lastDay := c.cfg.StartDay + c.cfg.Days - 1
	return c.dayTime(lastDay+1) + float64(c.cfg.DrainDays)*SecondsPerDay
}

// AddRunLogHook chains fn after any previously configured OnRunLog
// callback. Observers (the control-room monitor, statsdb feeds) attach
// here without displacing each other. Call before the campaign runs.
func (c *Campaign) AddRunLogHook(fn func(*logs.RunRecord)) {
	if fn == nil {
		return
	}
	prev := c.cfg.OnRunLog
	c.cfg.OnRunLog = func(r *logs.RunRecord) {
		if prev != nil {
			prev(r)
		}
		fn(r)
	}
}

// FS exposes the campaign's filesystem, holding run directories and logs.
func (c *Campaign) FS() *vfs.FS { return c.fs }

// Cluster exposes the campaign's cluster.
func (c *Campaign) Cluster() *cluster.Cluster { return c.cluster }

// Telemetry exposes the campaign's telemetry (nil when not configured).
func (c *Campaign) Telemetry() *telemetry.Telemetry { return c.cfg.Telemetry }

// Spec returns the current spec of a forecast (nil if absent).
func (c *Campaign) Spec(name string) *forecast.Spec { return c.specs[name] }

// AssignedNode returns the node a forecast currently runs on.
func (c *Campaign) AssignedNode(name string) string { return c.assign[name] }

// Forecasts returns the configured forecast names in configuration order —
// the expected-production roster data-quality rules check against.
func (c *Campaign) Forecasts() []string { return append([]string(nil), c.order...) }

// Days returns the number of simulated days in the campaign.
func (c *Campaign) Days() int { return c.cfg.Days }

// dayTime converts a day-of-year to campaign seconds.
func (c *Campaign) dayTime(day int) float64 {
	return float64(day-c.cfg.StartDay) * SecondsPerDay
}

// Run executes the whole campaign and returns all run results sorted by
// (forecast, day).
func (c *Campaign) Run() []RunResult {
	c.Prepare()
	return c.Finish()
}

// Prepare schedules every day's launches on the engine without running
// it. Callers that want to observe the factory mid-campaign (the ForeMan
// monitoring view) call Prepare, drive Engine().RunUntil to the moment of
// interest, take a Snapshot, and then call Finish.
func (c *Campaign) Prepare() {
	if c.prepared {
		return
	}
	c.prepared = true
	if tel := c.cfg.Telemetry; tel != nil {
		c.campaignSpan = tel.Trace().Begin("campaign",
			fmt.Sprintf("campaign-%d", c.cfg.Year), "factory", nil)
		c.campaignSpan.SetArg("days", fmt.Sprint(c.cfg.Days))
		c.campaignSpan.SetArg("forecasts", fmt.Sprint(len(c.order)))
	}
	lastDay := c.cfg.StartDay + c.cfg.Days - 1
	for day := c.cfg.StartDay; day <= lastDay; day++ {
		day := day
		c.sched.At(c.dayTime(day), func() { c.startDay(day) })
	}
}

// Finish runs the remainder of the campaign (plus drain days) and returns
// all run results sorted by (forecast, day).
func (c *Campaign) Finish() []RunResult {
	c.Prepare()
	// Let still-running work drain, then stop.
	c.eng.RunUntil(c.Horizon())

	if tel := c.cfg.Telemetry; tel != nil {
		c.daySpan.EndSpan()
		c.campaignSpan.EndSpan()
		// Interrupted runs keep their observed extent in the trace.
		tel.Trace().EndOpen()
		c.mActiveRuns.Set(float64(len(c.active)))
	}

	// Runs still active at the end are recorded as unfinished.
	for i := range c.results {
		r := &c.results[i]
		if !r.Finished && !r.Dropped {
			r.End = math.NaN()
			r.Walltime = math.NaN()
		}
	}
	sort.Slice(c.results, func(i, j int) bool {
		if c.results[i].Forecast != c.results[j].Forecast {
			return c.results[i].Forecast < c.results[j].Forecast
		}
		return c.results[i].Day < c.results[j].Day
	})
	return c.results
}

// startDay applies the day's events, then launches every forecast at its
// start offset (plus any one-day input delay).
func (c *Campaign) startDay(day int) {
	if tel := c.cfg.Telemetry; tel != nil {
		// One span per factory day, midnight to midnight; WIP carry-over
		// is whatever is still executing when the new day starts.
		c.daySpan.EndSpan()
		c.daySpan = tel.Trace().Begin("day", fmt.Sprintf("day-%03d", day), "factory", c.campaignSpan)
		c.mCarryOver.Set(float64(len(c.active)))
	}
	for _, ev := range c.events[day] {
		ev.apply(c)
		c.cfg.Telemetry.Registry().Counter("factory_events_applied_total",
			telemetry.Labels{"type": eventType(ev)}).Inc()
	}
	for _, name := range c.order {
		spec, ok := c.specs[name]
		if !ok {
			continue // removed by an event
		}
		name, spec := name, spec.Clone() // freeze this day's configuration
		c.sched.After(spec.StartOffset+c.inputDelays[name], func() { c.launch(day, name, spec) })
	}
	// Input delays apply to the day they were declared for only.
	clear(c.inputDelays)
}

// eventType names an event's concrete type for metric labels, e.g.
// "SetTimesteps".
func eventType(ev Event) string {
	t := fmt.Sprintf("%T", ev)
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		t = t[i+1:]
	}
	return t
}

// launch starts one forecast run.
func (c *Campaign) launch(day int, name string, spec *forecast.Spec) {
	nodeName, ok := c.assign[name]
	if !ok {
		return // removed between midnight and launch (possible via events)
	}
	node := c.cluster.Node(nodeName)
	dir := logs.RunDir(name, c.cfg.Year, day)

	idx := len(c.results)
	c.results = append(c.results, RunResult{
		Forecast:  name,
		Day:       day,
		Node:      nodeName,
		Start:     c.eng.Now(),
		End:       math.NaN(),
		Walltime:  math.NaN(),
		Timesteps: spec.Timesteps,
		MeshName:  spec.Mesh.Name,
		MeshSides: spec.Mesh.Sides,
		Code:      spec.Code,
	})

	runKey := fmt.Sprintf("%s/%d", name, day)
	var runSpan *telemetry.Span
	if tel := c.cfg.Telemetry; tel != nil {
		tel.Registry().Counter("factory_launches_total", telemetry.Labels{"forecast": name}).Inc()
		runSpan = tel.Trace().Begin("run", runKey, nodeName, c.daySpan)
		runSpan.SetArg("forecast", name)
		runSpan.SetArg("day", fmt.Sprint(day))
		runSpan.SetArg("node", nodeName)
		c.runSpans[runKey] = runSpan
		c.mActiveRuns.Add(1)
	}
	cfg := workflow.Config{
		Spec:        spec,
		Dir:         dir,
		SimNode:     node,
		SimFS:       c.fs,
		ProductNode: node,
		ProductFS:   c.fs,
		Increments:  c.cfg.Increments,
		Workers:     c.cfg.Workers,
		Poll:        c.cfg.Poll,
		Telemetry:   c.cfg.Telemetry,
		Span:        runSpan,
		OnDone: func(r *workflow.Run) {
			delete(c.active, runKey)
			res := &c.results[idx]
			res.End = c.eng.Now()
			res.Walltime = r.Walltime()
			res.Finished = true
			if tel := c.cfg.Telemetry; tel != nil {
				tel.Registry().Counter("factory_runs_completed_total", telemetry.Labels{"forecast": name}).Inc()
				c.mActiveRuns.Add(-1)
				c.mWalltimes.Observe(res.Walltime)
				if sp := c.runSpans[runKey]; sp != nil {
					sp.EndSpan()
					delete(c.runSpans, runKey)
				}
			}
			c.writeLog(res, logs.StatusCompleted)
		},
	}
	c.active[runKey] = workflow.Start(c.eng, cfg)
	// Write a provisional "running" log, as the paper's crawler would
	// find for an in-flight run (its statistics are incomplete).
	c.writeLog(&c.results[idx], logs.StatusRunning)
}

// writeLog stores the run's log file.
func (c *Campaign) writeLog(r *RunResult, status string) {
	spec := c.specs[r.Forecast]
	region := ""
	products := 0
	if spec != nil {
		region = spec.Region
		products = len(spec.Products)
	}
	rec := &logs.RunRecord{
		Forecast:    r.Forecast,
		Region:      region,
		Year:        c.cfg.Year,
		Day:         r.Day,
		Node:        r.Node,
		CodeVersion: r.Code.Name,
		CodeFactor:  r.Code.CostFactor,
		MeshName:    r.MeshName,
		MeshSides:   r.MeshSides,
		Timesteps:   r.Timesteps,
		Start:       r.Start,
		Status:      status,
		Products:    products,
	}
	if status == logs.StatusCompleted {
		rec.End = r.End
		rec.Walltime = r.Walltime
	}
	if err := logs.Write(c.fs, rec); err != nil {
		panic(fmt.Sprintf("factory: write log: %v", err))
	}
	if c.cfg.OnRunLog != nil {
		c.cfg.OnRunLog(rec)
	}
}

// Walltimes returns the per-day walltime series for one forecast, as
// plotted in Figures 8 and 9: (day, walltime) for every finished run.
func Walltimes(results []RunResult, name string) (days []int, walltimes []float64) {
	for _, r := range results {
		if r.Forecast == name && r.Finished {
			days = append(days, r.Day)
			walltimes = append(walltimes, r.Walltime)
		}
	}
	return days, walltimes
}
