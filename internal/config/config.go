// Package config loads factory descriptions from JSON, so a downstream
// CORIE-like deployment can describe its plant, forecast fleet, and
// calendar of changes in a file instead of Go code:
//
//	{
//	  "year": 2005,
//	  "days": 76,
//	  "nodes": [{"name": "fnode01", "cpus": 2, "speed": 1.0}],
//	  "forecasts": [{
//	    "name": "forecast-tillamook", "region": "tillamook",
//	    "timesteps": 5760, "meshSides": 24000, "products": 8,
//	    "startHour": 3, "priority": 5, "node": "fnode01"
//	  }],
//	  "events": [
//	    {"day": 21, "type": "set-timesteps", "forecast": "forecast-tillamook", "timesteps": 11520},
//	    {"day": 50, "type": "add-forecast", "node": "fnode01",
//	     "spec": {"name": "forecast-newport", "region": "newport",
//	              "timesteps": 4320, "meshSides": 18000, "products": 6, "startHour": 3}},
//	    {"day": 56, "type": "reassign", "forecast": "forecast-newport", "node": "fnode04"}
//	  ]
//	}
//
// Event types: set-timesteps, set-code, set-mesh, add-forecast,
// remove-forecast, reassign, add-node, fail-node, repair-node,
// delay-input.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/factory"
	"repro/internal/forecast"
)

// File is the top-level JSON document.
type File struct {
	Year      int            `json:"year"`
	StartDay  int            `json:"startDay"`
	Days      int            `json:"days"`
	DrainDays int            `json:"drainDays"`
	Nodes     []NodeJSON     `json:"nodes"`
	Forecasts []ForecastJSON `json:"forecasts"`
	Events    []EventJSON    `json:"events"`
}

// NodeJSON describes one compute node.
type NodeJSON struct {
	Name  string  `json:"name"`
	CPUs  int     `json:"cpus"`
	Speed float64 `json:"speed"`
}

// ForecastJSON describes a forecast and (for the initial fleet) its node.
type ForecastJSON struct {
	Name      string  `json:"name"`
	Region    string  `json:"region"`
	Timesteps int     `json:"timesteps"`
	MeshSides int     `json:"meshSides"`
	Products  int     `json:"products"`
	StartHour float64 `json:"startHour"`
	Priority  int     `json:"priority"`
	// Code overrides the default code version (optional).
	CodeName   string  `json:"codeName,omitempty"`
	CodeFactor float64 `json:"codeFactor,omitempty"`
	// Node is required for entries in the top-level forecasts list and for
	// add-forecast events it is carried by the event instead.
	Node string `json:"node,omitempty"`
}

// EventJSON is one calendar entry; Type selects which fields apply.
type EventJSON struct {
	Day      int    `json:"day"`
	Type     string `json:"type"`
	Forecast string `json:"forecast,omitempty"`
	Node     string `json:"node,omitempty"`

	Timesteps  int           `json:"timesteps,omitempty"`
	CodeName   string        `json:"codeName,omitempty"`
	CodeFactor float64       `json:"codeFactor,omitempty"`
	MeshName   string        `json:"meshName,omitempty"`
	MeshSides  int           `json:"meshSides,omitempty"`
	Spec       *ForecastJSON `json:"spec,omitempty"`
	CPUs       int           `json:"cpus,omitempty"`
	Speed      float64       `json:"speed,omitempty"`
	DelayHours float64       `json:"delayHours,omitempty"`
}

// spec builds the forecast.Spec for a ForecastJSON.
func (f ForecastJSON) spec() (*forecast.Spec, error) {
	if f.Name == "" {
		return nil, fmt.Errorf("config: forecast with empty name")
	}
	// NewSpec panics on invalid parameters (it serves trusted Go callers);
	// config input is untrusted, so validate the essentials first.
	if f.Timesteps <= 0 || f.MeshSides <= 0 {
		return nil, fmt.Errorf("config: forecast %s needs positive timesteps (%d) and meshSides (%d)",
			f.Name, f.Timesteps, f.MeshSides)
	}
	if f.StartHour < 0 || f.StartHour >= 24 {
		return nil, fmt.Errorf("config: forecast %s startHour %v out of range [0, 24)", f.Name, f.StartHour)
	}
	region := f.Region
	if region == "" {
		region = f.Name
	}
	products := f.Products
	if products <= 0 {
		products = 6
	}
	s := forecast.NewSpec(f.Name, region, f.Timesteps, f.MeshSides, products)
	s.StartOffset = f.StartHour * 3600
	s.Priority = f.Priority
	if f.CodeName != "" {
		factor := f.CodeFactor
		if factor <= 0 {
			factor = 1
		}
		s.Code = forecast.CodeVersion{Name: f.CodeName, CostFactor: factor}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("config: forecast %s: %w", f.Name, err)
	}
	return s, nil
}

// event builds the factory.Event for an EventJSON.
func (e EventJSON) event() (factory.Event, error) {
	switch e.Type {
	case "set-timesteps":
		if e.Forecast == "" || e.Timesteps <= 0 {
			return nil, fmt.Errorf("config: day %d set-timesteps needs forecast and timesteps", e.Day)
		}
		return factory.SetTimesteps{Day: e.Day, Forecast: e.Forecast, Timesteps: e.Timesteps}, nil
	case "set-code":
		if e.Forecast == "" || e.CodeName == "" || e.CodeFactor <= 0 {
			return nil, fmt.Errorf("config: day %d set-code needs forecast, codeName, codeFactor", e.Day)
		}
		return factory.SetCode{Day: e.Day, Forecast: e.Forecast,
			Code: forecast.CodeVersion{Name: e.CodeName, CostFactor: e.CodeFactor}}, nil
	case "set-mesh":
		if e.Forecast == "" || e.MeshName == "" || e.MeshSides <= 0 {
			return nil, fmt.Errorf("config: day %d set-mesh needs forecast, meshName, meshSides", e.Day)
		}
		return factory.SetMesh{Day: e.Day, Forecast: e.Forecast,
			Mesh: forecast.Mesh{Name: e.MeshName, Sides: e.MeshSides}}, nil
	case "add-forecast":
		if e.Spec == nil || e.Node == "" {
			return nil, fmt.Errorf("config: day %d add-forecast needs spec and node", e.Day)
		}
		s, err := e.Spec.spec()
		if err != nil {
			return nil, err
		}
		return factory.AddForecast{Day: e.Day, Spec: s, Node: e.Node}, nil
	case "remove-forecast":
		if e.Forecast == "" {
			return nil, fmt.Errorf("config: day %d remove-forecast needs forecast", e.Day)
		}
		return factory.RemoveForecast{Day: e.Day, Forecast: e.Forecast}, nil
	case "reassign":
		if e.Forecast == "" || e.Node == "" {
			return nil, fmt.Errorf("config: day %d reassign needs forecast and node", e.Day)
		}
		return factory.Reassign{Day: e.Day, Forecast: e.Forecast, Node: e.Node}, nil
	case "add-node":
		if e.Node == "" || e.CPUs <= 0 || e.Speed <= 0 {
			return nil, fmt.Errorf("config: day %d add-node needs node, cpus, speed", e.Day)
		}
		return factory.AddNode{Day: e.Day,
			Node: factory.NodeSpec{Name: e.Node, CPUs: e.CPUs, Speed: e.Speed}}, nil
	case "fail-node":
		if e.Node == "" {
			return nil, fmt.Errorf("config: day %d fail-node needs node", e.Day)
		}
		return factory.FailNode{Day: e.Day, Node: e.Node}, nil
	case "repair-node":
		if e.Node == "" {
			return nil, fmt.Errorf("config: day %d repair-node needs node", e.Day)
		}
		return factory.RepairNode{Day: e.Day, Node: e.Node}, nil
	case "delay-input":
		if e.Forecast == "" || e.DelayHours <= 0 {
			return nil, fmt.Errorf("config: day %d delay-input needs forecast and delayHours", e.Day)
		}
		return factory.DelayInput{Day: e.Day, Forecast: e.Forecast, Delta: e.DelayHours * 3600}, nil
	default:
		return nil, fmt.Errorf("config: day %d has unknown event type %q", e.Day, e.Type)
	}
}

// Parse converts a JSON document into a campaign configuration. The
// resulting config is further validated by factory.New.
func Parse(data []byte) (factory.Config, error) {
	var f File
	if err := unmarshalStrict(data, &f); err != nil {
		return factory.Config{}, fmt.Errorf("config: %w", err)
	}
	cfg := factory.Config{
		Year:      f.Year,
		StartDay:  f.StartDay,
		Days:      f.Days,
		DrainDays: f.DrainDays,
	}
	for _, n := range f.Nodes {
		if n.Name == "" || n.CPUs <= 0 || n.Speed <= 0 {
			return factory.Config{}, fmt.Errorf("config: node %q needs name, cpus, speed", n.Name)
		}
		cfg.Nodes = append(cfg.Nodes, factory.NodeSpec{Name: n.Name, CPUs: n.CPUs, Speed: n.Speed})
	}
	for _, fc := range f.Forecasts {
		if fc.Node == "" {
			return factory.Config{}, fmt.Errorf("config: forecast %q needs a node", fc.Name)
		}
		s, err := fc.spec()
		if err != nil {
			return factory.Config{}, err
		}
		cfg.Forecasts = append(cfg.Forecasts, factory.Assignment{Spec: s, Node: fc.Node})
	}
	for _, ev := range f.Events {
		e, err := ev.event()
		if err != nil {
			return factory.Config{}, err
		}
		cfg.Events = append(cfg.Events, e)
	}
	return cfg, nil
}

// unmarshalStrict rejects unknown fields, catching config typos.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
