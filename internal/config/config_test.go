package config

import (
	"strings"
	"testing"

	"repro/internal/factory"
)

const sampleJSON = `{
  "year": 2005,
  "days": 30,
  "nodes": [
    {"name": "fnode01", "cpus": 2, "speed": 1.0},
    {"name": "fnode02", "cpus": 2, "speed": 1.2}
  ],
  "forecasts": [
    {"name": "forecast-tillamook", "region": "tillamook", "timesteps": 5760,
     "meshSides": 24000, "products": 8, "startHour": 3, "priority": 5, "node": "fnode01"},
    {"name": "forecast-dev", "timesteps": 5760, "meshSides": 19200,
     "startHour": 4, "priority": 2, "node": "fnode02",
     "codeName": "elcirc-dev-r100", "codeFactor": 1.0}
  ],
  "events": [
    {"day": 21, "type": "set-timesteps", "forecast": "forecast-tillamook", "timesteps": 11520},
    {"day": 10, "type": "set-code", "forecast": "forecast-dev", "codeName": "r2", "codeFactor": 1.5},
    {"day": 11, "type": "set-mesh", "forecast": "forecast-dev", "meshName": "m2", "meshSides": 16800},
    {"day": 12, "type": "add-forecast", "node": "fnode02",
     "spec": {"name": "forecast-new", "timesteps": 2880, "meshSides": 14000, "startHour": 2}},
    {"day": 20, "type": "remove-forecast", "forecast": "forecast-new"},
    {"day": 13, "type": "reassign", "forecast": "forecast-dev", "node": "fnode01"},
    {"day": 14, "type": "add-node", "node": "fnode03", "cpus": 4, "speed": 1.5},
    {"day": 15, "type": "fail-node", "node": "fnode01"},
    {"day": 16, "type": "repair-node", "node": "fnode01"},
    {"day": 17, "type": "delay-input", "forecast": "forecast-tillamook", "delayHours": 2}
  ]
}`

func TestParseSampleAndRun(t *testing.T) {
	cfg, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Year != 2005 || cfg.Days != 30 || len(cfg.Nodes) != 2 ||
		len(cfg.Forecasts) != 2 || len(cfg.Events) != 10 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// The parsed config drives a real campaign.
	c, err := factory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := c.Run()
	days, wt := factory.Walltimes(results, "forecast-tillamook")
	if len(days) == 0 {
		t.Fatal("no tillamook runs")
	}
	// The day-21 timestep doubling from the config takes effect.
	var before, after float64
	for i, d := range days {
		if d == 18 {
			before = wt[i]
		}
		if d == 25 {
			after = wt[i]
		}
	}
	if after < 1.8*before {
		t.Fatalf("timestep event not applied: %v vs %v", before, after)
	}
	// add-forecast ran days 12..19.
	newDays, _ := factory.Walltimes(results, "forecast-new")
	if len(newDays) != 8 || newDays[0] != 12 || newDays[len(newDays)-1] != 19 {
		t.Fatalf("forecast-new days = %v", newDays)
	}
}

func TestParseDefaultsAndCodeOverride(t *testing.T) {
	cfg, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	dev := cfg.Forecasts[1].Spec
	if dev.Region != "forecast-dev" {
		t.Fatalf("region default = %q", dev.Region)
	}
	if dev.Code.Name != "elcirc-dev-r100" {
		t.Fatalf("code = %+v", dev.Code)
	}
	if len(dev.Products) != 6 {
		t.Fatalf("default products = %d", len(dev.Products))
	}
	if dev.StartOffset != 4*3600 {
		t.Fatalf("start offset = %v", dev.StartOffset)
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", `{`},
		{"unknown field", `{"days": 1, "bogus": true}`},
		{"bad node", `{"days": 1, "nodes": [{"name": "", "cpus": 2, "speed": 1}]}`},
		{"forecast without node", `{"days": 1, "forecasts": [{"name": "f", "timesteps": 10, "meshSides": 10}]}`},
		{"forecast zero timesteps", `{"days": 1, "forecasts": [{"name": "f", "timesteps": 0, "meshSides": 10, "node": "n"}]}`},
		{"forecast bad hour", `{"days": 1, "forecasts": [{"name": "f", "timesteps": 10, "meshSides": 10, "node": "n", "startHour": 25}]}`},
		{"unknown event", `{"days": 1, "events": [{"day": 1, "type": "explode"}]}`},
		{"set-timesteps incomplete", `{"days": 1, "events": [{"day": 1, "type": "set-timesteps"}]}`},
		{"set-code incomplete", `{"days": 1, "events": [{"day": 1, "type": "set-code", "forecast": "f"}]}`},
		{"set-mesh incomplete", `{"days": 1, "events": [{"day": 1, "type": "set-mesh", "forecast": "f"}]}`},
		{"add-forecast without spec", `{"days": 1, "events": [{"day": 1, "type": "add-forecast", "node": "n"}]}`},
		{"add-forecast bad spec", `{"days": 1, "events": [{"day": 1, "type": "add-forecast", "node": "n", "spec": {"name": ""}}]}`},
		{"remove without forecast", `{"days": 1, "events": [{"day": 1, "type": "remove-forecast"}]}`},
		{"reassign incomplete", `{"days": 1, "events": [{"day": 1, "type": "reassign", "forecast": "f"}]}`},
		{"add-node incomplete", `{"days": 1, "events": [{"day": 1, "type": "add-node", "node": "n"}]}`},
		{"fail-node incomplete", `{"days": 1, "events": [{"day": 1, "type": "fail-node"}]}`},
		{"repair-node incomplete", `{"days": 1, "events": [{"day": 1, "type": "repair-node"}]}`},
		{"delay-input incomplete", `{"days": 1, "events": [{"day": 1, "type": "delay-input", "forecast": "f"}]}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.json)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), "config") && tc.name != "not json" && tc.name != "unknown field" {
			t.Errorf("%s: error lacks context: %v", tc.name, err)
		}
	}
}

func TestParsedEventStringsWork(t *testing.T) {
	cfg, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cfg.Events {
		if e.String() == "" {
			t.Fatalf("event %T renders empty", e)
		}
	}
}
