package forecast

import "fmt"

// StandardOutputs returns the conventional two-day output-file set for a
// forecast: per-day files for salinity, temperature, velocity, and
// elevation, named in the CORIE style ("1_salt.63", "2_salt.63", ...).
// Velocity fields are the largest; elevation the smallest.
func StandardOutputs(days int) []OutputFile {
	if days <= 0 {
		days = 2
	}
	type varShare struct {
		v     Variable
		share float64
	}
	vars := []varShare{
		{VarSalinity, 0.25},
		{VarTemperature, 0.25},
		{VarVelocity, 0.40},
		{VarElevation, 0.10},
	}
	var out []OutputFile
	for day := 1; day <= days; day++ {
		for _, vs := range vars {
			ext := ".63"
			if vs.v == VarVelocity {
				ext = ".64" // vector fields use the .64 format in CORIE
			}
			out = append(out, OutputFile{
				Name:     fmt.Sprintf("%d_%s%s", day, vs.v, ext),
				Variable: vs.v,
				Day:      day,
				Share:    vs.share / float64(days),
			})
		}
	}
	return out
}

// StandardProducts returns a representative product set drawn from the
// Figure 2 catalog for a forecast with the given outputs: surface and
// bottom isolines for salinity and temperature, transects, cross-sections,
// plume and estuary plots, and an animation that depends on the isoline
// frames. n controls how many products are generated (minimum 1); products
// are emitted in a fixed order so workloads are reproducible.
func StandardProducts(outputs []OutputFile, n int) []ProductSpec {
	saltInputs := inputsFor(outputs, VarSalinity)
	tempInputs := inputsFor(outputs, VarTemperature)
	velInputs := inputsFor(outputs, VarVelocity)
	elevInputs := inputsFor(outputs, VarElevation)

	all := []ProductSpec{
		{Name: "isosal_near_surface", Class: ClassIsolines, Inputs: saltInputs, Scale: 1.0},
		{Name: "isosal_far_surface", Class: ClassIsolines, Inputs: saltInputs, Scale: 1.2},
		{Name: "isosal_bottom", Class: ClassIsolines, Inputs: saltInputs, Scale: 0.9},
		{Name: "isotemp_surface", Class: ClassIsolines, Inputs: tempInputs, Scale: 1.0},
		{Name: "transect_channel", Class: ClassTransects, Inputs: saltInputs, Scale: 1.0},
		{Name: "transect_estuary", Class: ClassTransects, Inputs: tempInputs, Scale: 1.0},
		{Name: "xsection_mouth", Class: ClassCrossSections, Inputs: velInputs, Scale: 1.0},
		{Name: "xsection_upstream", Class: ClassCrossSections, Inputs: velInputs, Scale: 0.8},
		{Name: "plume_extent", Class: ClassPlume, Inputs: saltInputs, Scale: 1.0},
		{Name: "estuary_elev_plot", Class: ClassEstuaryPlots, Inputs: elevInputs, Scale: 1.0},
		{Name: "anim_salinity", Class: ClassAnimations, Inputs: saltInputs, Scale: 1.0,
			DependsOn: []string{"isosal_near_surface", "isosal_far_surface"}},
		{Name: "anim_velocity", Class: ClassAnimations, Inputs: velInputs, Scale: 0.8,
			DependsOn: []string{"xsection_mouth"}},
	}
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	picked := all[:n]
	// Drop dependencies on products outside the picked prefix.
	names := make(map[string]bool, n)
	for _, p := range picked {
		names[p.Name] = true
	}
	out := make([]ProductSpec, n)
	for i, p := range picked {
		out[i] = p
		var deps []string
		for _, d := range p.DependsOn {
			if names[d] {
				deps = append(deps, d)
			}
		}
		out[i].DependsOn = deps
	}
	return out
}

func inputsFor(outputs []OutputFile, v Variable) []string {
	var in []string
	for _, o := range outputs {
		if o.Variable == v {
			in = append(in, o.Name)
		}
	}
	return in
}

// NewSpec builds a validated forecast spec with the standard output and
// product catalog. It panics on invalid parameters: specs are constructed
// from trusted configuration in this library.
func NewSpec(name, region string, timesteps, meshSides, nProducts int) *Spec {
	outputs := StandardOutputs(2)
	s := &Spec{
		Name:      name,
		Region:    region,
		Timesteps: timesteps,
		Mesh:      Mesh{Name: region + "-mesh-v1", Sides: meshSides},
		Code:      CodeVersion{Name: "elcirc-5.01", CostFactor: 1.0},
		Outputs:   outputs,
		Products:  StandardProducts(outputs, nProducts),
		Deadline:  86400,
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("forecast: NewSpec(%s): %v", name, err))
	}
	return s
}

// ReplicateProducts returns a clone of the spec whose product catalog is
// repeated n times (suffixes "#1".."#n"), with dependency edges remapped
// within each replica. The §4.2 scalability experiment uses this to run
// four sets of data products concurrently at the server.
func ReplicateProducts(s *Spec, n int) *Spec {
	if n <= 1 {
		return s.Clone()
	}
	c := s.Clone()
	var products []ProductSpec
	for rep := 1; rep <= n; rep++ {
		for _, p := range s.Products {
			q := p
			q.Name = fmt.Sprintf("%s#%d", p.Name, rep)
			q.Inputs = append([]string(nil), p.Inputs...)
			q.DependsOn = make([]string, len(p.DependsOn))
			for i, d := range p.DependsOn {
				q.DependsOn[i] = fmt.Sprintf("%s#%d", d, rep)
			}
			products = append(products, q)
		}
	}
	c.Products = products
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("forecast: ReplicateProducts: %v", err))
	}
	return c
}

// Tillamook returns the Tillamook forecast used in Figure 8: 5760
// timesteps (two days at 30 s) on a 24,000-side mesh. Its isolated
// simulation work is 32,000 reference CPU-seconds; with data products
// generated at the same node (the factory's current architecture) the
// co-location slowdown brings the daily walltime to the ≈40,000 s the
// paper plots.
func Tillamook() *Spec {
	s := NewSpec("forecast-tillamook", "tillamook", 5760, 24000, 8)
	s.StartOffset = 3 * 3600 // atmospheric forcings available at 3am
	s.Priority = 5
	return s
}

// Dev returns the developmental forecast of Figure 9, which is continually
// adapted: new code versions and meshes are common.
func Dev() *Spec {
	s := NewSpec("forecasts-dev", "columbia-dev", 5760, 19200, 6)
	s.Code = CodeVersion{Name: "elcirc-dev-r100", CostFactor: 1.0}
	s.StartOffset = 4 * 3600
	s.Priority = 2
	return s
}

// DataflowForecast returns the forecast used in the §4.2 architecture
// experiment (Figs 6/7): an ELCIRC run whose isolated simulation time is
// ≈10,500 s on the client node, with the full product catalog so that
// products are ≈20% of run data volume.
func DataflowForecast() *Spec {
	s := NewSpec("forecast-dataflow", "columbia", 2880, 16000, 12)
	s.Priority = 5
	return s
}
