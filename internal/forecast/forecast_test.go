package forecast

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTillamookCalibration(t *testing.T) {
	s := Tillamook()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig 8: ≈40,000 s walltime at 5760 timesteps with products generated
	// at the same node: isolated sim work × co-location slowdown.
	if w := s.SimWork() * SimColocationSlowdown; math.Abs(w-40000) > 1 {
		t.Fatalf("Tillamook co-located sim time = %v, want ≈40000", w)
	}
	// Doubling timesteps doubles the work (paper: day 21).
	d := s.Clone()
	d.Timesteps = 11520
	if w := d.SimWork(); math.Abs(w-2*s.SimWork()) > 1 {
		t.Fatalf("doubled-timestep SimWork = %v, want %v", w, 2*s.SimWork())
	}
}

func TestSimWorkLinearInTimestepsAndSides(t *testing.T) {
	f := func(tsRaw, sidesRaw uint16, factorRaw uint8) bool {
		ts := int(tsRaw%10000) + 100
		sides := int(sidesRaw%50000) + 1000
		factor := 0.5 + float64(factorRaw%10)*0.1
		s := NewSpec("f", "r", ts, sides, 4)
		s.Code.CostFactor = factor
		base := s.SimWork()
		s2 := s.Clone()
		s2.Timesteps = ts * 2
		s3 := s.Clone()
		s3.Mesh.Sides = sides * 3
		return math.Abs(s2.SimWork()-2*base) < 1e-6*base &&
			math.Abs(s3.SimWork()-3*base) < 1e-6*base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeVersionScalesWork(t *testing.T) {
	s := NewSpec("f", "r", 5760, 30000, 4)
	base := s.SimWork()
	s.Code.CostFactor = 1.65
	if got := s.SimWork(); math.Abs(got-1.65*base) > 1e-6*base {
		t.Fatalf("SimWork with factor 1.65 = %v, want %v", got, 1.65*base)
	}
}

func TestProductBytesShareAround20Percent(t *testing.T) {
	// §4.2: "For many forecasts, data products account for as much as 20%
	// of all data generated in a run."
	s := DataflowForecast()
	share := s.ProductBytes() / (s.OutputBytes() + s.ProductBytes())
	if share < 0.10 || share > 0.30 {
		t.Fatalf("product data share = %v, want ≈0.20", share)
	}
}

func TestStandardOutputsSharesSumToOne(t *testing.T) {
	for _, days := range []int{1, 2, 3} {
		outs := StandardOutputs(days)
		var sum float64
		for _, o := range outs {
			sum += o.Share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("days=%d: shares sum to %v", days, sum)
		}
	}
}

func TestStandardOutputsNaming(t *testing.T) {
	outs := StandardOutputs(2)
	var names []string
	for _, o := range outs {
		names = append(names, o.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"1_salt.63", "2_salt.63", "1_hvel.64", "2_elev.63"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("outputs %v missing %s", names, want)
		}
	}
}

func TestStandardProductsDependenciesWithinPrefix(t *testing.T) {
	outs := StandardOutputs(2)
	for n := 1; n <= 12; n++ {
		prods := StandardProducts(outs, n)
		if len(prods) != n {
			t.Fatalf("n=%d: got %d products", n, len(prods))
		}
		names := make(map[string]bool)
		for _, p := range prods {
			names[p.Name] = true
		}
		for _, p := range prods {
			for _, d := range p.DependsOn {
				if !names[d] {
					t.Fatalf("n=%d: product %s depends on absent %s", n, p.Name, d)
				}
			}
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := func() *Spec { return NewSpec("f", "r", 5760, 30000, 4) }
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero timesteps", func(s *Spec) { s.Timesteps = 0 }},
		{"zero sides", func(s *Spec) { s.Mesh.Sides = 0 }},
		{"zero cost factor", func(s *Spec) { s.Code.CostFactor = 0 }},
		{"no outputs", func(s *Spec) { s.Outputs = nil }},
		{"duplicate output", func(s *Spec) { s.Outputs = append(s.Outputs, s.Outputs[0]) }},
		{"bad share sum", func(s *Spec) { s.Outputs[0].Share += 0.5 }},
		{"unknown input", func(s *Spec) { s.Products[0].Inputs = []string{"nope"} }},
		{"unknown dep", func(s *Spec) { s.Products[0].DependsOn = []string{"nope"} }},
		{"zero scale", func(s *Spec) { s.Products[0].Scale = 0 }},
		{"duplicate product", func(s *Spec) { s.Products = append(s.Products, s.Products[0]) }},
		{"no product inputs", func(s *Spec) {
			s.Products[0].Inputs = nil
			s.Products[0].DependsOn = nil
		}},
	}
	for _, tc := range cases {
		s := good()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad spec", tc.name)
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Tillamook()
	c := s.Clone()
	c.Timesteps = 1
	c.Outputs[0].Share = 99
	c.Products[0].Inputs[0] = "changed"
	if s.Timesteps == 1 || s.Outputs[0].Share == 99 || s.Products[0].Inputs[0] == "changed" {
		t.Fatal("Clone aliases the original")
	}
}

func TestOutputLookup(t *testing.T) {
	s := Tillamook()
	o, ok := s.Output("1_salt.63")
	if !ok || o.Variable != VarSalinity || o.Day != 1 {
		t.Fatalf("Output lookup: %+v %v", o, ok)
	}
	if _, ok := s.Output("missing"); ok {
		t.Fatal("found missing output")
	}
}

func TestProductWorkFor(t *testing.T) {
	s := DataflowForecast()
	var sum float64
	for _, p := range s.Products {
		w, ok := s.ProductWorkFor(p.Name)
		if !ok || w <= 0 {
			t.Fatalf("ProductWorkFor(%s) = %v, %v", p.Name, w, ok)
		}
		sum += w
	}
	if math.Abs(sum-s.ProductWork()) > 1e-6*s.ProductWork() {
		t.Fatalf("per-product sum %v != ProductWork %v", sum, s.ProductWork())
	}
	if _, ok := s.ProductWorkFor("nope"); ok {
		t.Fatal("unknown product found")
	}
}

func TestProductWorkPositiveAndScales(t *testing.T) {
	s := DataflowForecast()
	w := s.ProductWork()
	if w <= 0 {
		t.Fatalf("ProductWork = %v, want > 0", w)
	}
	if s.TotalWork() != s.SimWork()+s.ProductWork() {
		t.Fatal("TotalWork mismatch")
	}
	// Fewer products → less work.
	small := NewSpec("s", "r", 2880, 26000, 2)
	if small.ProductWork() >= w {
		t.Fatalf("2-product work %v >= 12-product work %v", small.ProductWork(), w)
	}
}

func TestSortSpecs(t *testing.T) {
	a := NewSpec("a", "r", 100, 1000, 1)
	b := NewSpec("b", "r", 100, 1000, 1)
	c := NewSpec("c", "r", 100, 1000, 1)
	b.Priority = 9
	specs := []*Spec{c, a, b}
	SortSpecs(specs)
	if specs[0] != b || specs[1] != a || specs[2] != c {
		t.Fatalf("sorted order: %s %s %s", specs[0].Name, specs[1].Name, specs[2].Name)
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassIsolines:      "isolines",
		ClassTransects:     "transects",
		ClassCrossSections: "cross-sections",
		ClassAnimations:    "animations",
		ClassPlume:         "plume",
		ClassEstuaryPlots:  "estuary-plots",
	}
	for c, name := range want {
		if c.String() != name {
			t.Fatalf("Class(%d).String() = %q, want %q", int(c), c.String(), name)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Fatal("unknown class string wrong")
	}
}

func TestProductNames(t *testing.T) {
	s := NewSpec("f", "r", 960, 10000, 3)
	names := s.ProductNames()
	if len(names) != 3 || names[0] != s.Products[0].Name {
		t.Fatalf("ProductNames = %v", names)
	}
}

func TestReplicateProducts(t *testing.T) {
	s := DataflowForecast()
	r := ReplicateProducts(s, 3)
	if len(r.Products) != 3*len(s.Products) {
		t.Fatalf("got %d products, want %d", len(r.Products), 3*len(s.Products))
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dependencies remap within each replica.
	for _, p := range r.Products {
		for _, d := range p.DependsOn {
			if p.Name[len(p.Name)-2:] != d[len(d)-2:] {
				t.Fatalf("product %s depends on %s across replicas", p.Name, d)
			}
		}
	}
	// Work and bytes scale with the replica count.
	if math.Abs(r.ProductWork()-3*s.ProductWork()) > 1e-6*s.ProductWork() {
		t.Fatalf("ProductWork = %v, want %v", r.ProductWork(), 3*s.ProductWork())
	}
	// n ≤ 1 returns a plain clone.
	if c := ReplicateProducts(s, 1); len(c.Products) != len(s.Products) {
		t.Fatal("n=1 should clone")
	}
	// The original is untouched.
	if len(s.Products) != 12 {
		t.Fatalf("original mutated: %d products", len(s.Products))
	}
}

func TestClassProfilesAllPositive(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		cpu, ratio := c.Profile()
		if cpu <= 0 || ratio <= 0 {
			t.Fatalf("class %s has non-positive profile (%v, %v)", c, cpu, ratio)
		}
	}
}

func TestNamedForecasts(t *testing.T) {
	for _, s := range []*Spec{Tillamook(), Dev(), DataflowForecast()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	// Dataflow forecast: isolated sim time ≈10,500 s (calibration for Figs 6/7).
	df := DataflowForecast()
	if w := df.SimWork(); w < 9000 || w < 1 || w > 12000 {
		t.Fatalf("DataflowForecast SimWork = %v, want ≈10500", w)
	}
}
