// Package forecast models the CORIE forecast factory's workload: forecast
// runs (a numerical simulation followed by incremental generation of
// derived data products), meshes, timestep granularities, code versions,
// and the product catalog of Figure 2 in the paper.
//
// The actual ELCIRC simulation code is proprietary Fortran running on the
// authors' cluster; this package substitutes a calibrated work model (see
// DESIGN.md §2). The management layer — the subject of the paper — only
// observes running times, incremental output growth, and resource
// consumption, all of which the work model supplies:
//
//   - simulation work (reference CPU-seconds) =
//     SimCostPerStepSide × timesteps × mesh sides × code-version factor
//   - model-output bytes = OutputBytesPerStepSide × timesteps × sides,
//     appended in fixed-size increments as the simulation progresses
//   - each data product consumes model-output increments and costs
//     CPU-seconds proportional to the bytes consumed
package forecast

import (
	"fmt"
	"sort"
)

// Calibration constants for the work model. They are chosen so that the
// paper's headline magnitudes land in range: the Tillamook forecast at
// 5760 timesteps on a reference CPU takes ≈40,000 s (Fig 8), and the
// dataflow experiment forecast (Figs 6/7) has an isolated simulation time
// near 10,500 s with products ≈20% of run data volume.
const (
	// SimCostPerStepSide is the simulation cost in reference CPU-seconds
	// per (timestep × mesh side).
	SimCostPerStepSide = 40000.0 / (5760 * 30000)

	// OutputBytesPerStepSide is model-output bytes produced per
	// (timestep × mesh side), spread across the run's output files.
	OutputBytesPerStepSide = 2e9 / (5760 * 30000)

	// SimColocationSlowdown and ProductColocationSlowdown model the
	// memory/CPU interference §4.2 of the paper observes when the
	// simulation and product generation share a node ("both consume
	// considerable amounts of memory and CPU cycles, so running them
	// concurrently may increase the running times of both"): the
	// simulation's work inflates by the first factor and product tasks by
	// the second whenever they are co-located. Architecture 2 avoids both
	// by moving product generation to the server.
	SimColocationSlowdown     = 1.25
	ProductColocationSlowdown = 1.40
)

// Mesh describes the spatial discretization of a forecast region.
type Mesh struct {
	Name  string
	Sides int // number of sides; run time scales near-linearly with this
}

// CodeVersion identifies a simulation code release. CostFactor scales the
// simulation's CPU cost relative to the reference version (1.0); the paper
// observes major version changes shifting run times by hours.
type CodeVersion struct {
	Name       string
	CostFactor float64
}

// Class is a data-product family from Figure 2 of the paper.
type Class int

// Product classes per Figure 2: isolines, transects, cross-sections,
// animations, and plume/estuary plots.
const (
	ClassIsolines Class = iota
	ClassTransects
	ClassCrossSections
	ClassAnimations
	ClassPlume
	ClassEstuaryPlots
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassIsolines:
		return "isolines"
	case ClassTransects:
		return "transects"
	case ClassCrossSections:
		return "cross-sections"
	case ClassAnimations:
		return "animations"
	case ClassPlume:
		return "plume"
	case ClassEstuaryPlots:
		return "estuary-plots"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// classProfile holds per-class cost/size coefficients.
type classProfile struct {
	// cpuPerMB is product-generation cost in reference CPU-seconds per MB
	// of model output consumed.
	cpuPerMB float64
	// outputRatio is product bytes emitted per byte of model output
	// consumed.
	outputRatio float64
}

// classProfiles is indexed by Class. Animations are the most expensive
// (rendering frames); transects the cheapest (slicing).
var classProfiles = [numClasses]classProfile{
	ClassIsolines:      {cpuPerMB: 2.0, outputRatio: 0.06},
	ClassTransects:     {cpuPerMB: 0.75, outputRatio: 0.04},
	ClassCrossSections: {cpuPerMB: 1.1, outputRatio: 0.05},
	ClassAnimations:    {cpuPerMB: 4.1, outputRatio: 0.16},
	ClassPlume:         {cpuPerMB: 1.65, outputRatio: 0.06},
	ClassEstuaryPlots:  {cpuPerMB: 0.9, outputRatio: 0.04},
}

// Profile returns the cost/size coefficients for a class.
func (c Class) Profile() (cpuPerMB, outputRatio float64) {
	p := classProfiles[c]
	return p.cpuPerMB, p.outputRatio
}

// Variable is a simulated physical variable carried by a model-output file.
type Variable string

// Variables modeled by CORIE forecasts.
const (
	VarSalinity    Variable = "salt"
	VarTemperature Variable = "temp"
	VarVelocity    Variable = "hvel"
	VarElevation   Variable = "elev"
)

// OutputFile describes one model-output file of a run (e.g. "1_salt.63":
// the salinity field for day 1 of the two-day forecast period).
type OutputFile struct {
	Name     string
	Variable Variable
	Day      int     // 1-based day of the forecast period
	Share    float64 // fraction of the run's total output bytes in this file
}

// ProductSpec describes one derived data product.
type ProductSpec struct {
	Name   string
	Class  Class
	Inputs []string // names of the model-output files consumed
	// Scale multiplies the class cost (e.g. finer isolines cost more).
	Scale float64
	// DependsOn names products that must be (incrementally) available
	// before this one runs, e.g. animations over isoline frames.
	DependsOn []string
}

// Spec is a complete forecast specification: everything ForeMan needs to
// know about one daily product run.
type Spec struct {
	Name      string
	Region    string
	Timesteps int // e.g. 5760 = two days at 30 s
	Mesh      Mesh
	Code      CodeVersion
	Outputs   []OutputFile
	Products  []ProductSpec

	// StartOffset is the earliest start time in seconds after midnight,
	// constrained by real-time observation inputs (river flows,
	// atmospheric forcings).
	StartOffset float64
	// Deadline is the desired completion time in seconds after midnight;
	// forecasts are perishable and lose value after it.
	Deadline float64
	// Priority orders forecasts when capacity is short; higher is more
	// important. ForeMan may delay or drop low-priority forecasts.
	Priority int
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("forecast: spec has empty name")
	}
	if s.Timesteps <= 0 {
		return fmt.Errorf("forecast %s: timesteps must be positive, got %d", s.Name, s.Timesteps)
	}
	if s.Mesh.Sides <= 0 {
		return fmt.Errorf("forecast %s: mesh %q must have positive sides, got %d", s.Name, s.Mesh.Name, s.Mesh.Sides)
	}
	if s.Code.CostFactor <= 0 {
		return fmt.Errorf("forecast %s: code %q must have positive cost factor, got %v", s.Name, s.Code.Name, s.Code.CostFactor)
	}
	if len(s.Outputs) == 0 {
		return fmt.Errorf("forecast %s: no output files", s.Name)
	}
	var share float64
	names := make(map[string]bool, len(s.Outputs))
	for _, o := range s.Outputs {
		if names[o.Name] {
			return fmt.Errorf("forecast %s: duplicate output file %q", s.Name, o.Name)
		}
		names[o.Name] = true
		if o.Share <= 0 {
			return fmt.Errorf("forecast %s: output %q has non-positive share", s.Name, o.Name)
		}
		share += o.Share
	}
	if share < 0.999 || share > 1.001 {
		return fmt.Errorf("forecast %s: output shares sum to %v, want 1", s.Name, share)
	}
	prodNames := make(map[string]bool, len(s.Products))
	for _, p := range s.Products {
		if prodNames[p.Name] {
			return fmt.Errorf("forecast %s: duplicate product %q", s.Name, p.Name)
		}
		prodNames[p.Name] = true
	}
	for _, p := range s.Products {
		if len(p.Inputs) == 0 && len(p.DependsOn) == 0 {
			return fmt.Errorf("forecast %s: product %q has no inputs", s.Name, p.Name)
		}
		for _, in := range p.Inputs {
			if !names[in] {
				return fmt.Errorf("forecast %s: product %q reads unknown output %q", s.Name, p.Name, in)
			}
		}
		for _, dep := range p.DependsOn {
			if !prodNames[dep] {
				return fmt.Errorf("forecast %s: product %q depends on unknown product %q", s.Name, p.Name, dep)
			}
		}
		if p.Scale <= 0 {
			return fmt.Errorf("forecast %s: product %q has non-positive scale", s.Name, p.Name)
		}
	}
	return nil
}

// SimWork returns the total simulation cost in reference CPU-seconds.
func (s *Spec) SimWork() float64 {
	return SimCostPerStepSide * float64(s.Timesteps) * float64(s.Mesh.Sides) * s.Code.CostFactor
}

// OutputBytes returns the total model-output bytes the run produces.
func (s *Spec) OutputBytes() float64 {
	return OutputBytesPerStepSide * float64(s.Timesteps) * float64(s.Mesh.Sides)
}

// ProductWork returns the total product-generation cost in reference
// CPU-seconds, summed over all products.
func (s *Spec) ProductWork() float64 {
	total := 0.0
	outBytes := s.OutputBytes()
	shares := s.outputShares()
	for _, p := range s.Products {
		cpuPerMB, _ := p.Class.Profile()
		var inputBytes float64
		for _, in := range p.Inputs {
			inputBytes += outBytes * shares[in]
		}
		total += cpuPerMB * p.Scale * inputBytes / 1e6
	}
	return total
}

// ProductWorkFor returns the CPU cost of computing one named product over
// the forecast's full outputs — the sizing input for a made-to-order
// request. The second result is false for unknown products.
func (s *Spec) ProductWorkFor(name string) (float64, bool) {
	outBytes := s.OutputBytes()
	shares := s.outputShares()
	for _, p := range s.Products {
		if p.Name != name {
			continue
		}
		cpuPerMB, _ := p.Class.Profile()
		var inputBytes float64
		for _, in := range p.Inputs {
			inputBytes += outBytes * shares[in]
		}
		return cpuPerMB * p.Scale * inputBytes / 1e6, true
	}
	return 0, false
}

// ProductBytes returns the total bytes of derived data products.
func (s *Spec) ProductBytes() float64 {
	total := 0.0
	outBytes := s.OutputBytes()
	shares := s.outputShares()
	for _, p := range s.Products {
		_, ratio := p.Class.Profile()
		var inputBytes float64
		for _, in := range p.Inputs {
			inputBytes += outBytes * shares[in]
		}
		total += ratio * p.Scale * inputBytes
	}
	return total
}

// TotalWork returns simulation plus product work in reference CPU-seconds.
func (s *Spec) TotalWork() float64 { return s.SimWork() + s.ProductWork() }

func (s *Spec) outputShares() map[string]float64 {
	m := make(map[string]float64, len(s.Outputs))
	for _, o := range s.Outputs {
		m[o.Name] = o.Share
	}
	return m
}

// Output returns the named output file spec and whether it exists.
func (s *Spec) Output(name string) (OutputFile, bool) {
	for _, o := range s.Outputs {
		if o.Name == name {
			return o, true
		}
	}
	return OutputFile{}, false
}

// ProductNames returns product names in catalog order.
func (s *Spec) ProductNames() []string {
	out := make([]string, len(s.Products))
	for i, p := range s.Products {
		out[i] = p.Name
	}
	return out
}

// Clone returns a deep copy of the spec, so campaign events can mutate one
// day's configuration without aliasing history.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Outputs = append([]OutputFile(nil), s.Outputs...)
	c.Products = make([]ProductSpec, len(s.Products))
	for i, p := range s.Products {
		c.Products[i] = p
		c.Products[i].Inputs = append([]string(nil), p.Inputs...)
		c.Products[i].DependsOn = append([]string(nil), p.DependsOn...)
	}
	return &c
}

// SortSpecs orders specs by descending priority, then name, for stable
// planning input.
func SortSpecs(specs []*Spec) {
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Priority != specs[j].Priority {
			return specs[i].Priority > specs[j].Priority
		}
		return specs[i].Name < specs[j].Name
	})
}
