// Quickstart: build a small forecast factory, estimate run times from a
// day of history, pack the runs onto nodes, predict completion times, and
// simulate the day to check the prediction.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/logs"
)

func main() {
	// A three-node plant and three forecasts.
	nodeSpecs := []factory.NodeSpec{
		{Name: "node-a", CPUs: 2, Speed: 1.0},
		{Name: "node-b", CPUs: 2, Speed: 1.0},
		{Name: "node-c", CPUs: 2, Speed: 1.3}, // a newer, faster machine
	}
	tillamook := forecast.Tillamook()
	columbia := forecast.NewSpec("forecast-columbia", "columbia", 5760, 28000, 8)
	columbia.StartOffset = 2 * 3600
	yaquina := forecast.NewSpec("forecast-yaquina", "yaquina", 4320, 20000, 6)
	yaquina.StartOffset = 3 * 3600
	specs := []*forecast.Spec{tillamook, columbia, yaquina}

	// Day one: run everything once to accumulate log history.
	campaign, err := factory.New(factory.Config{
		Days:  1,
		Nodes: nodeSpecs,
		Forecasts: []factory.Assignment{
			{Spec: tillamook, Node: "node-a"},
			{Spec: columbia, Node: "node-b"},
			{Spec: yaquina, Node: "node-c"},
		},
	})
	if err != nil {
		panic(err)
	}
	campaign.Run()

	// Harvest the run logs, exactly as the factory's crawlers do.
	records, err := logs.Crawl(campaign.FS(), "/runs")
	if err != nil {
		panic(err)
	}
	fmt.Printf("harvested %d run logs:\n", len(records))
	for _, r := range records {
		fmt.Printf("  %-20s day %d on %-8s walltime %8.0f s\n", r.Forecast, r.Day, r.Node, r.Walltime)
	}

	// Plan day two with ForeMan: estimate from history, pack, predict.
	nodes := make([]core.NodeInfo, len(nodeSpecs))
	for i, ns := range nodeSpecs {
		nodes[i] = core.NodeInfo{Name: ns.Name, CPUs: ns.CPUs, Speed: ns.Speed}
	}
	estimator := core.NewEstimator(records, nodes)
	runs := estimator.PlanRuns(specs, nodes)
	schedule, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.StayPut})
	if err != nil {
		panic(err)
	}

	fmt.Println("\nday-two plan:")
	for _, r := range runs {
		fmt.Printf("  %-20s on %-8s estimated completion %8.0f s after midnight\n",
			r.Name, schedule.Plan.Assign[r.Name], schedule.Prediction.Completion[r.Name])
	}
	fmt.Printf("feasible: %v\n", schedule.Feasible())

	// What-if: move the Tillamook forecast to the fast node.
	if err := schedule.Move(tillamook.Name, "node-c"); err != nil {
		panic(err)
	}
	fmt.Printf("\nwhat-if, %s moved to node-c: completion %8.0f s (node speed scales the estimate)\n",
		tillamook.Name, schedule.Prediction.Completion[tillamook.Name])
}
