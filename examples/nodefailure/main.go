// Nodefailure: a node dies at planning time. Compare ForeMan's two
// rescheduling policies — minimal-move (displace only the failed node's
// runs) and full-reshuffle (re-pack everything) — by disruption and by
// predicted completion times.
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

func main() {
	nodes := []core.NodeInfo{
		{Name: "fnode01", CPUs: 2, Speed: 1.0},
		{Name: "fnode02", CPUs: 2, Speed: 1.0},
		{Name: "fnode03", CPUs: 2, Speed: 1.0},
		{Name: "fnode04", CPUs: 2, Speed: 1.0},
	}
	runs := []core.Run{
		{Name: "tillamook", Work: 40000, Start: 10800, Deadline: 86400, Priority: 8, PrevNode: "fnode01"},
		{Name: "columbia", Work: 47000, Start: 7200, Deadline: 86400, Priority: 9, PrevNode: "fnode01"},
		{Name: "yaquina", Work: 30000, Start: 10800, Deadline: 86400, Priority: 5, PrevNode: "fnode02"},
		{Name: "newport", Work: 27000, Start: 10800, Deadline: 86400, Priority: 5, PrevNode: "fnode02"},
		{Name: "coos-bay", Work: 22000, Start: 14400, Deadline: 86400, Priority: 4, PrevNode: "fnode03"},
		{Name: "willapa", Work: 20000, Start: 14400, Deadline: 86400, Priority: 4, PrevNode: "fnode03"},
		{Name: "grays", Work: 15000, Start: 10800, Deadline: 86400, Priority: 3, PrevNode: "fnode04"},
		{Name: "dev", Work: 38000, Start: 14400, Deadline: 86400, Priority: 2, PrevNode: "fnode04"},
	}

	schedule, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.StayPut})
	if err != nil {
		panic(err)
	}
	fmt.Println("before failure:")
	printPlan(schedule)

	for _, pol := range []core.ReschedulePolicy{core.MinimalMove, core.FullReshuffle} {
		after, err := core.RescheduleAfterFailure(schedule, "fnode01", pol, core.WorstFitDecreasing)
		if err != nil {
			panic(err)
		}
		moved := core.MovedRuns(schedule, after)
		fmt.Printf("\nfnode01 fails, policy %s: %d runs moved (%s)\n",
			pol, len(moved), strings.Join(moved, ", "))
		printPlan(after)
	}
}

func printPlan(s *core.Schedule) {
	for _, r := range s.Plan.Runs {
		fmt.Printf("  %-10s on %-8s done %8.0f s  (deadline %6.0f, late=%v)\n",
			r.Name, s.Plan.Assign[r.Name], s.Prediction.Completion[r.Name],
			r.Deadline, s.Prediction.Completion[r.Name] > r.Deadline)
	}
	if late := s.Late(); len(late) > 0 {
		fmt.Printf("  LATE: %s\n", strings.Join(late, ", "))
	}
}
