// Ondemand: made-to-order products alongside the daily made-to-stock
// forecasts — the paper's §5 future work. Requests for custom products
// arrive during the day; a greedy policy serves them immediately and
// wrecks the forecast deadlines, while the deadline-aware policy uses
// ForeMan's predictor to admit only what the plant can absorb, deferring
// the rest to the night shift.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ondemand"
)

func main() {
	nodes := []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	// The day's made-to-stock forecasts: tightly packed, finishing just
	// before midnight.
	stock := []core.Run{
		{Name: "tillamook", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "columbia", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "yaquina", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "newport", Work: 80000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{
		"tillamook": "n1", "columbia": "n1", "yaquina": "n2", "newport": "n2",
	}
	// Mid-morning, scientists start asking for custom products.
	var requests []ondemand.Request
	for i := 0; i < 8; i++ {
		requests = append(requests, ondemand.Request{
			ID:      fmt.Sprintf("custom-%d", i+1),
			Arrival: 18000 + float64(i)*2400, // from 5am, one every 40 min
			Work:    15000,
		})
	}

	for _, policy := range []ondemand.Policy{ondemand.GreedyPolicy{}, ondemand.DeadlineAwarePolicy{}} {
		res, err := ondemand.Run(ondemand.Config{
			Nodes: nodes, Stock: stock, Assign: assign,
			Requests: requests, Policy: policy,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== policy: %s ===\n", policy)
		fmt.Printf("  requests: %d admitted, %d deferred, %d rejected\n",
			res.Count(ondemand.Admitted), res.Count(ondemand.Deferred), res.Count(ondemand.Rejected))
		fmt.Printf("  mean request latency: %8.0f s\n", res.MeanLatency())
		if len(res.StockLate) > 0 {
			fmt.Printf("  MADE-TO-STOCK RUNS LATE: %v\n", res.StockLate)
		} else {
			fmt.Println("  all made-to-stock forecasts met their deadlines")
		}
		for _, rr := range res.Requests {
			fmt.Printf("    %-10s %-9s node=%-4s latency %8.0f s\n",
				rr.Request.ID, rr.Outcome, rr.Node, rr.Latency())
		}
		fmt.Println()
	}
}
