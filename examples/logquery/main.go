// Logquery: harvest run logs from a simulated campaign into the
// statistics database and answer the management questions §4.3 of the
// paper motivates — find forecasts by code version, chart walltime
// trends, detect the contention spikes and code-change level shifts, and
// fit the walltime-vs-timesteps line used for estimation.
package main

import (
	"fmt"

	"repro/internal/factory"
	"repro/internal/logs"
	"repro/internal/stats"
	"repro/internal/statsdb"
)

func main() {
	// Run the Figure 9 campaign: the dev forecast with code and mesh
	// changes plus two contention spikes.
	campaign, err := factory.New(factory.Figure9Scenario())
	if err != nil {
		panic(err)
	}
	campaign.Run()
	records, err := logs.Crawl(campaign.FS(), "/runs")
	if err != nil {
		panic(err)
	}
	db := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db, records); err != nil {
		panic(err)
	}
	fmt.Printf("loaded %d run records into the statistics database\n\n", len(records))

	// "Find all forecasts that use code version X."
	q := "SELECT forecast, COUNT(*), AVG(walltime) FROM runs WHERE code_version = 'elcirc-dev-r300' GROUP BY forecast"
	fmt.Println(q)
	res, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %s: %s runs, avg walltime %.0f s\n", row[0], row[1], row[2].Float())
	}

	// Walltime statistics per code version, most expensive first.
	q = "SELECT code_version, COUNT(*), AVG(walltime), MAX(walltime) FROM runs " +
		"WHERE forecast = 'forecasts-dev' AND status = 'completed' " +
		"GROUP BY code_version ORDER BY AVG(walltime) DESC"
	fmt.Printf("\n%s\n", q)
	res, err = db.Query(q)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-18s %3s runs  avg %8.0f s  max %8.0f s\n",
			row[0], row[1], row[2].Float(), row[3].Float())
	}

	// Joined with plant metadata: walltime by node speed class.
	if _, err := statsdb.LoadNodes(db, []statsdb.NodeRow{
		{Name: "fnode01", CPUs: 2, Speed: 1.0},
		{Name: "fnode02", CPUs: 2, Speed: 1.0},
		{Name: "fnode03", CPUs: 2, Speed: 1.0},
		{Name: "fnode04", CPUs: 2, Speed: 1.0},
		{Name: "fnode05", CPUs: 2, Speed: 1.0},
		{Name: "fnode06", CPUs: 2, Speed: 1.0},
	}); err != nil {
		panic(err)
	}
	q = "SELECT nodes.name, COUNT(*), AVG(walltime) FROM runs JOIN nodes ON node = name " +
		"GROUP BY nodes.name ORDER BY nodes.name"
	fmt.Printf("\n%s\n", q)
	res, err = db.Query(q)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %3s runs  avg %8.0f s\n", row[0], row[1], row[2].Float())
	}

	// EXPLAIN shows the planner picking the code_version hash index.
	res, err = db.Query("EXPLAIN SELECT forecast FROM runs WHERE code_version = 'elcirc-dev-r300'")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nplan: %s\n", res.Rows[0][0])

	// Pull the dev walltime series and apply statistical process control.
	q = "SELECT day, walltime FROM runs WHERE forecast = 'forecasts-dev' AND status = 'completed' ORDER BY day"
	res, err = db.Query(q)
	if err != nil {
		panic(err)
	}
	days, _ := res.Floats("day")
	wall, _ := res.Floats("walltime")

	// Statistical process control: first segment the series at sustained
	// level shifts (code/mesh deployments), then flag outliers within
	// each stable segment (contention spikes).
	shifts := stats.LevelShifts(wall, 5, 3000)
	fmt.Printf("\nsustained level shifts (code/mesh changes): days")
	for _, i := range shifts {
		fmt.Printf(" ≈%d", int(days[i]))
	}
	fmt.Println()

	fmt.Printf("contention spikes within stable segments: days")
	bounds := append([]int{0}, shifts...)
	bounds = append(bounds, len(wall))
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		for _, i := range stats.Outliers(wall[lo:hi], 8) {
			fmt.Printf(" %d", int(days[lo+i]))
		}
	}
	fmt.Println()

	// The estimation rule: walltime is linear in timesteps. Use a second
	// campaign with timestep changes to demonstrate the fit.
	till := factory.Figure8Scenario()
	till.Days = 30 // enough to cover the day-21 timestep doubling
	var kept []factory.Event
	for _, e := range till.Events {
		if e.EventDay() < 31 {
			kept = append(kept, e)
		}
	}
	till.Events = kept
	c2, err := factory.New(till)
	if err != nil {
		panic(err)
	}
	c2.Run()
	recs2, err := logs.Crawl(c2.FS(), "/runs")
	if err != nil {
		panic(err)
	}
	db2 := statsdb.NewDB()
	if _, err := statsdb.LoadRuns(db2, recs2); err != nil {
		panic(err)
	}
	res, err = db2.Query("SELECT timesteps, walltime FROM runs WHERE forecast = 'forecast-tillamook' AND status = 'completed'")
	if err != nil {
		panic(err)
	}
	ts, _ := res.Floats("timesteps")
	w2, _ := res.Floats("walltime")
	fit, err := stats.FitLinear(ts, w2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwalltime vs timesteps: slope %.2f s/step, R² = %.4f\n", fit.Slope, fit.R2)
	fmt.Printf("predicted walltime at 8640 steps: %.0f s\n", fit.Predict(8640))
}
