// Dataflow: compare the paper's two data-flow architectures head to head
// on one forecast — products generated at the compute node (Architecture
// 1) versus at the public server (Architecture 2) — and show when each
// data series becomes available at the server.
package main

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/plot"
)

func main() {
	for _, arch := range []dataflow.Architecture{dataflow.Architecture1, dataflow.Architecture2} {
		res := dataflow.Run(arch, dataflow.Params{})
		fmt.Printf("=== %s ===\n", arch)
		fmt.Printf("  simulation walltime: %8.0f s\n", res.SimWalltime)
		fmt.Printf("  run walltime:        %8.0f s\n", res.RunWalltime)
		fmt.Printf("  all data at server:  %8.0f s\n", res.EndToEnd)
		fmt.Printf("  bytes over LAN:      %8.0f MB (saving %.1f%%)\n",
			res.BytesOverLink/1e6, 100*res.BandwidthSaving())

		var series []plot.Series
		for _, s := range res.Series {
			series = append(series, plot.Series{Name: s.Name, X: s.Times, Y: s.Fraction})
		}
		fmt.Println(plot.Chart{
			Title:  "fraction of data at server",
			XLabel: "time (s)",
			YLabel: "fraction",
			Height: 14,
			Series: series,
		}.Render())
	}

	// The knobs matter: a slower rsync interval delays data availability
	// even though total work is unchanged.
	slow := dataflow.Run(dataflow.Architecture2, dataflow.Params{RsyncInterval: 1800})
	fast := dataflow.Run(dataflow.Architecture2, dataflow.Params{RsyncInterval: 60})
	fmt.Printf("rsync every 30 min: end-to-end %8.0f s\n", slow.EndToEnd)
	fmt.Printf("rsync every  1 min: end-to-end %8.0f s\n", fast.EndToEnd)
}
