// Capacity: the growth study behind the paper's long-range planning
// question. CORIE expects to grow from 10 to 50–100 forecasts per day;
// rough-cut capacity planning says when the six-node plant runs out, and
// detailed scheduling says which forecasts start missing their deadlines
// first.
package main

import (
	"fmt"

	"repro/internal/core"
)

func plant(nodes int) []core.NodeInfo {
	out := make([]core.NodeInfo, nodes)
	for i := range out {
		out[i] = core.NodeInfo{Name: fmt.Sprintf("fnode%02d", i+1), CPUs: 2, Speed: 1.0}
	}
	return out
}

// syntheticRuns builds n forecasts with a spread of sizes and priorities.
func syntheticRuns(n int) []core.Run {
	runs := make([]core.Run, n)
	for i := range runs {
		work := 15000 + float64(i%7)*6000 // 15,000..51,000 CPU-s
		runs[i] = core.Run{
			Name:     fmt.Sprintf("forecast-%03d", i+1),
			Work:     work,
			Start:    7200 + float64(i%5)*1800,
			Deadline: 86400,
			Priority: 1 + i%9,
		}
	}
	return runs
}

func main() {
	nodes := plant(6)
	fmt.Println("growth study on the six-node plant:")
	fmt.Printf("%8s %12s %10s %8s %8s\n", "runs", "demand", "util", "late", "dropped")
	for _, n := range []int{10, 20, 30, 40, 50, 75, 100} {
		runs := syntheticRuns(n)
		rough := core.RoughCut(nodes, runs, 86400, nil)
		s, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.WorstFitDecreasing})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%8d %11.0fs %9.1f%% %8d %8d\n",
			n, rough.TotalWork, 100*rough.Utilization, len(s.Late()), len(s.Dropped))
	}

	// With priorities and dropping allowed, the factory trades low-value
	// forecasts for timeliness once over capacity.
	fmt.Println("\nat 50 runs with drop-on-overload:")
	runs := syntheticRuns(50)
	s, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{
		Heuristic: core.WorstFitDecreasing,
		AllowDrop: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  dropped %d low-priority forecasts, remainder feasible: %v\n", len(s.Dropped), s.Feasible())

	// How many nodes would the full 100-forecast plant need?
	fmt.Println("\nnodes needed for 100 forecasts (rough cut):")
	runs = syntheticRuns(100)
	for n := 6; n <= 24; n += 2 {
		rough := core.RoughCut(plant(n), runs, 86400, nil)
		marker := ""
		if rough.Feasible {
			marker = "  <- first feasible plant"
			fmt.Printf("  %2d nodes: utilization %5.1f%%%s\n", n, 100*rough.Utilization, marker)
			break
		}
		fmt.Printf("  %2d nodes: utilization %5.1f%%%s\n", n, 100*rough.Utilization, marker)
	}
}
