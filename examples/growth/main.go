// Growth: the long-range planning loop in action. CORIE expects to grow
// from 10 to 50-100 forecasts; this campaign adds batches of forecasts
// over six weeks, commissions new nodes when rough-cut utilization gets
// tight, and shows that walltimes stay flat — then re-runs the same
// growth WITHOUT the new nodes to show the saturation cascade the plan
// prevents.
package main

import (
	"fmt"
	"sort"

	"repro/internal/factory"
)

func summarize(label string, results []factory.RunResult) {
	byDay := map[int][]float64{}
	for _, r := range results {
		if r.Finished {
			byDay[r.Day] = append(byDay[r.Day], r.Walltime)
		}
	}
	var days []int
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("%6s %6s %12s %12s %8s\n", "day", "runs", "max wall (s)", "avg wall (s)", ">1 day")
	for _, d := range days {
		if d%7 != 1 {
			continue // weekly samples
		}
		wt := byDay[d]
		var max, sum float64
		late := 0
		for _, w := range wt {
			if w > max {
				max = w
			}
			sum += w
			if w > factory.SecondsPerDay {
				late++
			}
		}
		fmt.Printf("%6d %6d %12.0f %12.0f %8d\n", d, len(wt), max, sum/float64(len(wt)), late)
	}
	unfinished := 0
	for _, r := range results {
		if !r.Finished {
			unfinished++
		}
	}
	if unfinished > 0 {
		fmt.Printf("  %d runs never finished (wedged behind the backlog)\n", unfinished)
	}
	fmt.Println()
}

func main() {
	// With the plan: new nodes arrive with the week-3 and week-5 batches.
	planned, err := factory.New(factory.GrowthScenario())
	if err != nil {
		panic(err)
	}
	summarize("growth with node commissioning", planned.Run())

	// Without the plan: same forecasts, no new hardware.
	cfg := factory.GrowthScenario()
	var events []factory.Event
	base := factory.DefaultNodes()
	for _, e := range cfg.Events {
		switch ev := e.(type) {
		case factory.AddNode:
			continue // the hardware never arrives
		case factory.AddForecast:
			ev.Node = base[ev.EventDay()%len(base)].Name
			events = append(events, ev)
		default:
			events = append(events, e)
		}
	}
	cfg.Events = events
	unplanned, err := factory.New(cfg)
	if err != nil {
		panic(err)
	}
	summarize("growth without new nodes (saturation)", unplanned.Run())
}
