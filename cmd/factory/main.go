// Command factory runs a multi-day production campaign of the forecast
// factory and prints per-day walltimes, the event log, and node
// utilization — the raw material behind Figures 8 and 9.
//
// With -monitor-addr it also serves the control room while the campaign
// replays: a live HTML dashboard, Prometheus /metrics, and the JSON
// status/alert APIs. Combine with -replay-rate to slow the replay to an
// observable pace.
//
// With -harvest-interval the continuous harvest pipeline runs alongside
// the campaign: every N sim-hours an incremental pass crawls the run
// tree into the statistics database under watermark control, and the
// control room gains the harvest panel plus data-quality alerts
// (harvest staleness, quarantine-rate spikes).
//
// With -usage-interval the utilization observatory samples per-node CPU
// shares into a timeline (persisted to the node_usage table), detects
// contention and idle windows, renders the nodes×time heatmap, and —
// combined with -monitor-addr — serves /api/utilization, the dashboard
// heatmap panel, and saturation/imbalance/drift alerts. -pprof mounts
// Go profiling endpoints on the control-room server.
//
// With -serving-users the campaign's products go public: a serving edge
// (TTL cache keyed product+cycle, request coalescing, deadline-aware
// load shedding) runs on an added public-server node, every completed
// run publishes its forecast's products to it, and a diurnal crowd of
// that many simulated users hits the edge for the whole campaign. The
// end-of-campaign report shows hit rate, staleness-at-delivery
// percentiles, the per-product breakdown, and the demand-feedback
// priority table; with -monitor-addr the dashboard gains the live
// serving panel (/api/serving).
//
// Usage:
//
//	factory [-scenario fig8|fig9|growth] [-config file.json] [-forecast name]
//	        [-days n] [-snapshot hours] [-metrics-out file] [-trace-out file]
//	        [-monitor-addr host:port] [-replay-rate simsec-per-sec]
//	        [-harvest-interval hours] [-runs-dir dir]
//	        [-usage-interval minutes] [-pprof] [-serving-users n]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/engineprof"
	"repro/internal/factory"
	"repro/internal/forensics"
	"repro/internal/harvest"
	"repro/internal/logs"
	"repro/internal/monitor"
	"repro/internal/plot"
	"repro/internal/serving"
	"repro/internal/spc"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

func main() {
	scenario := flag.String("scenario", "fig8", "campaign scenario: fig8 or fig9")
	forecastName := flag.String("forecast", "", "forecast to print the walltime series for (default: the scenario's subject)")
	days := flag.Int("days", 0, "override the number of days simulated")
	snapshotAt := flag.Float64("snapshot", 0, "pause at this many hours into the campaign and show the factory monitor")
	configPath := flag.String("config", "", "load the campaign from a JSON factory description instead of a built-in scenario")
	metricsOut := flag.String("metrics-out", "", "write campaign metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "write the campaign trace as Chrome trace-event JSON to this file")
	monitorAddr := flag.String("monitor-addr", "", "serve the control room (dashboard, /metrics, status and alert APIs) on this address while the campaign replays")
	replayRate := flag.Float64("replay-rate", 0, "pace the replay at this many sim-seconds per wall-second (0 = full speed; needs -monitor-addr to be observable)")
	harvestInterval := flag.Float64("harvest-interval", 0, "run an incremental harvest pass every this many sim-hours (0 = off)")
	runsDir := flag.String("runs-dir", "", "mirror every run log into this real directory tree (harvestable later with foreman -harvest)")
	usageInterval := flag.Float64("usage-interval", 0, "sample per-node CPU shares into the utilization timeline every this many sim-minutes (0 = off)")
	pprofOn := flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/ on the control-room server")
	engineProf := flag.Bool("engineprof", false, "attach the kernel profiler and print the per-label hotspot summary at campaign end (implied by -monitor-addr, which serves the live report at /api/engine)")
	servingUsers := flag.Int("serving-users", 0, "serve the campaign's products from a public edge (TTL cache, coalescing, load shedding) to this many simulated users on an added public-server node (0 = off)")
	flag.Parse()

	var cfg factory.Config
	subject := ""
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg, err = config.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(cfg.Forecasts) == 0 {
			fmt.Fprintln(os.Stderr, "config has no forecasts")
			os.Exit(1)
		}
		subject = cfg.Forecasts[0].Spec.Name
		*scenario = *configPath
	} else {
		switch *scenario {
		case "fig8":
			cfg = factory.Figure8Scenario()
			subject = "forecast-tillamook"
		case "fig9":
			cfg = factory.Figure9Scenario()
			subject = "forecasts-dev"
		case "growth":
			cfg = factory.GrowthScenario()
			subject = "forecast-g00"
		default:
			fmt.Fprintf(os.Stderr, "unknown scenario %q (fig8, fig9, or growth)\n", *scenario)
			os.Exit(2)
		}
	}
	if *forecastName != "" {
		subject = *forecastName
	}
	if *days > 0 {
		cfg.Days = *days
		var kept []factory.Event
		for _, e := range cfg.Events {
			if e.EventDay() < cfg.StartDay+cfg.Days {
				kept = append(kept, e)
			}
		}
		cfg.Events = kept
	}

	fmt.Printf("campaign %s: days %d..%d, %d forecasts, %d nodes\n",
		*scenario, max(cfg.StartDay, 1), max(cfg.StartDay, 1)+cfg.Days-1,
		len(cfg.Forecasts), len(nodesOf(cfg)))
	for _, e := range cfg.Events {
		fmt.Printf("  event: %s\n", e)
	}

	var tel *telemetry.Telemetry
	if *metricsOut != "" || *traceOut != "" || *monitorAddr != "" || *harvestInterval > 0 || *usageInterval > 0 {
		tel = telemetry.New()
		cfg.Telemetry = tel
	}

	c, err := factory.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *runsDir != "" {
		// Mirror every run-log write into a real directory tree, laid out
		// exactly like the campaign's virtual one, so a later
		// `foreman -harvest <dir>` picks up where the campaign left off.
		c.AddRunLogHook(func(r *logs.RunRecord) {
			dir := filepath.Join(*runsDir, r.Forecast, fmt.Sprintf("%d-%03d", r.Year, r.Day))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "runs-dir:", err)
				return
			}
			if err := os.WriteFile(filepath.Join(dir, "run.log"), []byte(logs.Format(r)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "runs-dir:", err)
			}
		})
	}

	// The statistics database shared by the harvest pipeline and the
	// utilization observatory: run records land in runs, the sampler's
	// timeline in node_usage, joinable on node and time overlap.
	statsDB := statsdb.NewDB()

	// The kernel profiler rides along whenever asked for explicitly or
	// whenever the control room serves (so /api/engine always answers);
	// the bench holds its overhead under 5% of the replay.
	var kprof *engineprof.Profiler
	if *engineProf || *monitorAddr != "" {
		kprof = engineprof.New()
		c.Engine().SetProbe(kprof)
	}

	// Continuous harvest: an incremental pass over the run tree every
	// interval, journalled beside it, feeding the statistics database the
	// provenance queries and data-quality alerts read from.
	var harv *harvest.Harvester
	if *harvestInterval > 0 {
		harv, err = harvest.New(c.FS(), statsDB,
			harvest.NewVFSJournal(c.FS(), "/harvest/journal.jsonl"),
			harvest.Options{Telemetry: tel, Clock: c.Engine().Now})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		harvest.Schedule(c.Engine(), harv, *harvestInterval*3600, c.Horizon(), func(err error) {
			fmt.Fprintln(os.Stderr, "harvest:", err)
		})
	}

	// Utilization observatory: the sampler subscribes to cluster job
	// lifecycle events and buckets per-node CPU shares on the interval.
	var samp *usage.Sampler
	if *usageInterval > 0 {
		samp = usage.NewSampler(c.Cluster(), usage.Options{
			Interval:  *usageInterval * 60,
			Telemetry: tel,
		})
		samp.Start(c.Horizon())
	}

	// Public serving edge: the campaign's products go public on a
	// dedicated server node. Each completed run publishes its forecast's
	// products (run-log hook → PublishForecast), invalidating the cached
	// copies of the previous cycle, while the load generator replays the
	// user crowd against the edge for the whole campaign.
	var edge *serving.Edge
	var servingBase map[string]int
	if *servingUsers > 0 {
		pub := c.Cluster().AddNode("public-server", 2, 1)
		servingBase = make(map[string]int, len(cfg.Forecasts))
		for _, a := range cfg.Forecasts {
			servingBase[a.Spec.Name] = a.Spec.Priority
		}
		scfg := serving.Config{
			Engine:   c.Engine(),
			Server:   pub,
			Products: serving.DefaultProducts(servingBase),
		}
		if tel != nil {
			scfg.Telemetry = tel.Registry()
		}
		edge, err = serving.New(scfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c.AddRunLogHook(func(r *logs.RunRecord) {
			if r.End <= 0 {
				return
			}
			edge.PublishForecast(r.Forecast, r.Day-c.StartDay(), r.End)
		})
		gen, err := serving.NewGenerator(edge, serving.LoadConfig{Users: *servingUsers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen.Start(c.Horizon())
	}

	// Control room: attach the monitor before the campaign runs, serve it
	// from a wall-clock goroutine while the simulation replays.
	var mon *monitor.Monitor
	var spcObs *spc.Observatory
	var servedAddr net.Addr
	if *monitorAddr != "" {
		opts := monitor.DefaultOptions()
		if harv != nil {
			// Data-quality rules over the harvest pipeline's own metrics:
			// page when the harvester's heartbeat goes quiet for two
			// intervals, and when quarantines spike (bad logs arriving
			// faster than one per sim-hour means something upstream broke).
			opts.Staleness = []monitor.StalenessRule{{
				Name: "harvest_stale", Metric: harvest.MetricLastPassTime,
				MaxAge: 2 * *harvestInterval * 3600, Severity: monitor.SevCritical,
			}}
			opts.Rates = []monitor.RateRule{{
				Name: "quarantine_spike", Metric: harvest.MetricQuarantinedTotal,
				PerHourAbove: 1, Severity: monitor.SevWarning,
			}}
		}
		if samp != nil {
			// Capacity rules over the sampler's gauges: sustained per-node
			// saturation and idle-while-saturated imbalance, plus the
			// plan-vs-actual drift rule on completed runs.
			var nodeNames []string
			for _, n := range c.Cluster().Nodes() {
				nodeNames = append(nodeNames, n.Name())
			}
			opts.Thresholds = append(opts.Thresholds,
				monitor.UsageRules(nodeNames, 2*3600, monitor.SevWarning)...)
			opts.Drift = monitor.DriftRule{RelAbove: 0.25, MinSecs: 600, Severity: monitor.SevWarning}
		}
		// Process-control rules: the SPC observatory's run-rule verdicts
		// and changepoint detections surface through the standard alert
		// lifecycle alongside the threshold and staleness rules.
		opts.OutOfControl = monitor.OutOfControlRule{Enabled: true, Severity: monitor.SevWarning}
		opts.Changepoint = monitor.ChangepointRule{Enabled: true, Severity: monitor.SevWarning}
		mon = monitor.New(opts, tel.Registry())
		mon.Attach(c)

		// SPC observatory: every completed run streams through the online
		// control charts the moment its log is written, so the charts —
		// and the out_of_control/changepoint alerts they drive — track the
		// replay live. Drift and node-share series need the run ledger and
		// usage timeline and are closed out after the campaign drains.
		spcObs = spc.New(spc.DefaultParams())
		spcObs.OnEvent(func(e spc.Event) {
			if cp := e.Changepoint; cp != nil {
				mon.ObserveChangepoint(e.Kind, e.Subject, cp.Day, cp.DetectedDay, cp.Cause, cp.Before, cp.After)
			}
			mon.ObserveControl(e.Kind, e.Subject, e.Point.Day, e.SeriesOut, e.Point.Value, e.Point.Center, e.Point.Rules.Names())
		})
		spcObs.OnReplan(func(e spc.Event) {
			fmt.Printf("REPLAN trigger: drift/%s out of control on day %d (%+.0fs against plan)\n",
				e.Subject, e.Point.Day, e.Point.Value)
		})
		c.AddRunLogHook(func(r *logs.RunRecord) {
			if r.End <= 0 || r.Walltime <= 0 {
				return
			}
			deadline := 0.0
			if s := c.Spec(r.Forecast); s != nil && s.Deadline > 0 {
				deadline = float64(r.Day-c.StartDay())*factory.SecondsPerDay + s.Deadline
			}
			spcObs.ObserveRun(spc.RunObs{
				Forecast: r.Forecast, Day: r.Day, Node: r.Node,
				Walltime: r.Walltime, End: r.End, Deadline: deadline,
			})
		})
		ln, err := net.Listen("tcp", *monitorAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := monitor.NewServer(mon, tel.Registry())
		if harv != nil {
			srv.AttachHarvest(func() any { return harv.Status() })
		}
		if samp != nil {
			srv.AttachUtilization(func() any { return samp.Status() })
			// Forensics on demand: each request analyzes the trace so
			// far against the control room's plan, so the dashboard's
			// blame panel works during a replay (in-flight runs show
			// their lateness as of now) and stays current after the
			// campaign drains.
			srv.AttachForensics(func() any {
				rep, err := forensicsReport(c, mon, samp, tel)
				if err != nil {
					return map[string]string{"error": err.Error()}
				}
				return rep
			})
		}
		// The SPC endpoint serves the observatory's current snapshot: the
		// same report shape foreman -spc renders from the v5 tables, here
		// refreshed live as runs complete during the replay.
		srv.AttachSPC(func() any { return spcObs.Report() })
		// The engine panel reads the profiler's live snapshot on the same
		// refresh interval as every other panel.
		srv.AttachEngine(func() any { return kprof.Report() })
		if edge != nil {
			// The serving panel tracks the public edge live: hit rate,
			// shed fractions, and staleness percentiles as of the replay.
			srv.AttachServing(func() any { return edge.Stats() })
		}
		if *pprofOn {
			srv.EnablePprof()
		}
		go func() {
			if err := http.Serve(ln, srv.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		servedAddr = ln.Addr()
		fmt.Printf("control room serving on http://%s\n", servedAddr)
	}

	c.Prepare()
	if *snapshotAt > 0 {
		c.Engine().RunUntil(*snapshotAt * 3600)
		snap := c.Snapshot()
		fmt.Printf("\n--- factory monitor at t=%.1fh ---\n", snap.Now/3600)
		for _, a := range snap.Active {
			fmt.Printf("  running: %-24s day %3d on %-8s %5.1f%% of simulation done\n",
				a.Forecast, a.Day, a.Node, 100*a.SimProgress)
		}
		for _, sc := range snap.Scheduled {
			fmt.Printf("  queued:  %-24s day %3d on %-8s launches at %.1fh\n",
				sc.Forecast, sc.Day, sc.Node, sc.Start/3600)
		}
		fmt.Println()
		fmt.Print(snap.Gantt(72))
		fmt.Println()
	}
	if *replayRate > 0 {
		// Paced replay: advance the virtual clock in one-wall-second
		// chunks so the dashboard shows the campaign unfolding. The lag
		// gauge compares where the clock should be against where it is —
		// a growing value means the engine can't keep the requested pace.
		eng := c.Engine()
		expected := eng.Now()
		for eng.Now() < c.Horizon() {
			expected = min(expected+*replayRate, c.Horizon())
			eng.RunUntil(min(eng.Now()+*replayRate, c.Horizon()))
			eng.ObserveReplayLag(expected)
			time.Sleep(time.Second)
		}
	}
	results := c.Finish()
	if harv != nil {
		// One closing pass picks up logs written after the last scheduled
		// harvest (drain-time completions).
		if _, err := harv.Pass(); err != nil {
			fmt.Fprintln(os.Stderr, "harvest:", err)
		}
	}
	if mon != nil {
		mon.Finalize(c.Engine().Now())
	}
	if samp != nil {
		samp.Finalize(c.Engine().Now())
	}
	if spcObs != nil {
		// Close out the charts: plan-vs-actual drift from the control
		// room's run ledger, per-node daily mean shares from the usage
		// timeline, then persist the snapshot into the v5 tables so the
		// end-of-campaign summary below is read back from the same rows
		// /api/spc and foreman -spc render.
		runs := mon.Status().Runs
		sort.Slice(runs, func(i, j int) bool { return runs[i].End < runs[j].End })
		for _, r := range runs {
			if r.End == 0 || r.LaunchETA == 0 {
				continue
			}
			spcObs.ObserveDrift(r.Forecast, r.Day, r.End, r.End-r.LaunchETA)
		}
		if samp != nil {
			for day := c.StartDay(); day < c.StartDay()+c.Days(); day++ {
				d0 := float64(day-c.StartDay()) * factory.SecondsPerDay
				d1 := d0 + factory.SecondsPerDay
				for _, n := range c.Cluster().Nodes() {
					spcObs.ObserveNodeShare(n.Name(), day, d1, samp.MeanShareOver(n.Name(), d0, d1))
				}
			}
		}
		spcObs.Finalize()
		if err := spc.LoadReport(statsDB, spcObs.Report()); err != nil {
			fmt.Fprintln(os.Stderr, "spc:", err)
		}
	}

	fmt.Printf("\n%s walltimes by day:\n", subject)
	daysOut, wt := factory.Walltimes(results, subject)
	if len(daysOut) == 0 {
		fmt.Fprintf(os.Stderr, "no finished runs for forecast %q\n", subject)
		os.Exit(1)
	}
	for i := range daysOut {
		fmt.Printf("  day %3d  %9.0f s\n", daysOut[i], wt[i])
	}

	records, err := logs.Crawl(c.FS(), "/runs")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	perForecast := map[string]int{}
	for _, r := range records {
		perForecast[r.Forecast]++
	}
	var names []string
	for n := range perForecast {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\nrun logs harvested: %d records\n", len(records))
	for _, n := range names {
		fmt.Printf("  %-24s %d runs\n", n, perForecast[n])
	}
	fmt.Println("\nnode utilization:")
	for _, n := range c.Cluster().Nodes() {
		fmt.Printf("  %-10s %5.1f%%\n", n.Name(), 100*n.Utilization())
	}

	if samp != nil {
		fmt.Println("\nutilization observatory:")
		fmt.Print(samp.Report(5))
		var rows []string
		for _, n := range c.Cluster().Nodes() {
			rows = append(rows, n.Name())
		}
		grid := usage.CondenseGrid(rows, samp.Samples(), 96)
		hm := plot.Heatmap{
			Title: "node utilization heatmap (full campaign)",
			Rows:  grid.Nodes,
			Start: grid.Start,
			Step:  grid.Step,
			Cells: grid.Utilization,
			Width: 96,
		}
		fmt.Println()
		fmt.Print(hm.Render())
		if t, err := usage.LoadSamples(statsDB, samp.Samples()); err != nil {
			fmt.Fprintln(os.Stderr, "usage:", err)
		} else {
			fmt.Printf("node_usage table: %d rows (schema v%d)\n", t.Len(), statsdb.SchemaVersion(statsDB))
		}
	}

	if harv != nil {
		st := harv.Status()
		fmt.Printf("\nharvest pipeline: %d passes, %d records ingested (%d updated), %d watermark hits, %d quarantined\n",
			st.Passes, st.Totals.Ingested, st.Totals.Updated, st.Totals.WatermarkHits, st.Totals.Quarantined)
		for _, q := range st.Quarantine {
			fmt.Printf("  quarantined: %s (%s)\n", q.Path, q.Error)
		}
	}

	if edge != nil {
		st := edge.Stats()
		fmt.Println("\npublic serving edge:")
		fmt.Print(serving.SummaryTable(st))
		fmt.Println()
		fmt.Print(serving.ProductTable(st, 10))
		// The demand feedback loop: the crowd the edge observed, ranked
		// against the specs' configured priorities — the next planning
		// cycle's priority boost for storm-hit forecasts.
		fmt.Println()
		fmt.Print(serving.DemandTable(servingBase, edge.ForecastDemand()))
		if err := serving.LoadReport(statsDB, st); err != nil {
			fmt.Fprintln(os.Stderr, "serving:", err)
		} else {
			fmt.Printf("serving_stats table: %d products (schema v%d)\n",
				len(st.Products), statsdb.SchemaVersion(statsDB))
		}
	}

	if *metricsOut != "" {
		if err := writeTo(*metricsOut, tel.Registry().WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, tel.Trace().WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s (%d spans; open in chrome://tracing)\n",
			*traceOut, tel.Trace().Len())
		// The trace doubles as the data source for the ForeMan Gantt view:
		// render the last day's run spans as executed.
		spans := tel.Trace().Spans()
		bars := plot.GanttFromSpans(spans, "run")
		if len(bars) > 0 {
			lastDay := 0.0
			for _, b := range bars {
				if b.Start > lastDay {
					lastDay = b.Start
				}
			}
			dayStart := float64(int(lastDay/86400)) * 86400
			var dayBars []plot.GanttBar
			for _, b := range bars {
				if b.Start >= dayStart {
					b.Start -= dayStart
					b.End -= dayStart
					dayBars = append(dayBars, b)
				}
			}
			g := plot.Gantt{Title: "last day as executed (from trace spans)", Bars: dayBars, Width: 72}
			fmt.Println()
			fmt.Print(g.Render())
		}
	}

	if kprof != nil {
		// Persist the campaign's kernel profile into the v6 tables and
		// re-read before rendering — the same rows foreman -engineprof
		// and /api/engine derive from.
		if err := engineprof.LoadReport(statsDB, kprof.Report()); err != nil {
			fmt.Fprintln(os.Stderr, "engineprof:", err)
		} else if rep, err := engineprof.ReadReport(statsDB); err == nil {
			fmt.Printf("\nengine observatory (schema v%d; live report at /api/engine):\n",
				statsdb.SchemaVersion(statsDB))
			fmt.Print(engineprof.SummaryTable(rep, 8))
		}
	}

	if mon != nil {
		fmt.Println("\nSLO report (deadline attainment):")
		fmt.Print(mon.Report())
		if spcObs != nil {
			if rep, err := spc.ReadReport(statsDB); err == nil && len(rep.Series) > 0 {
				fmt.Printf("\nprocess control (schema v%d; full report at /api/spc):\n",
					statsdb.SchemaVersion(statsDB))
				fmt.Print(spc.SummaryTable(rep))
				if cps := spc.ChangepointTable(rep); cps != "" {
					fmt.Println()
					fmt.Print(cps)
				}
			}
		}
		if alerts := mon.Alerts(); len(alerts) > 0 {
			firing := 0
			for _, a := range alerts {
				if a.Firing() {
					firing++
				}
			}
			fmt.Printf("\nalerts: %d total, %d still firing (full history at /api/alerts)\n",
				len(alerts), firing)
		}
		fmt.Printf("\ncontrol room still serving on http://%s — Ctrl-C to exit\n", servedAddr)
		select {}
	}
}

// writeTo writes one exporter's output to a file.
// forensicsReport analyzes the campaign's trace against the plan the
// control room watched — the launch rule for the planned start, the
// launch-time completion prediction for the planned end, the SLO
// deadline — splitting each run's lateness into its blame components
// for the dashboard's blame panel. All inputs are snapshots or locked
// accessors, so it is safe to call from the HTTP goroutine while the
// simulation runs.
func forensicsReport(c *factory.Campaign, mon *monitor.Monitor, samp *usage.Sampler, tel *telemetry.Telemetry) (*forensics.Report, error) {
	var plan []forensics.PlanEntry
	for _, r := range mon.Status().Runs {
		start := r.Start
		if s := c.Spec(r.Forecast); s != nil {
			start = float64(r.Day-c.StartDay())*factory.SecondsPerDay + s.StartOffset
		}
		end := r.LaunchETA
		if end == 0 {
			end = r.ETA
		}
		plan = append(plan, forensics.PlanEntry{
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Start: start, End: end, Deadline: r.Deadline,
		})
	}
	return forensics.Analyze(forensics.Input{
		Spans:    tel.Trace().Spans(),
		Plan:     plan,
		Timeline: samp,
	})
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func nodesOf(cfg factory.Config) []factory.NodeSpec {
	if len(cfg.Nodes) > 0 {
		return cfg.Nodes
	}
	return factory.DefaultNodes()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
