// Command foreman demonstrates the ForeMan management flow on the paper's
// plant (six dual-CPU nodes, ten daily forecasts): it bootstraps a few
// days of history by running the factory simulator, harvests the run logs
// into the statistics database, estimates today's runs, packs them onto
// nodes, prints the rough-cut capacity plan, the predicted completion
// times as a Gantt chart, and the generated staging scripts. What-if moves
// and node-failure rescheduling are available as flags; both run on the
// planner's incremental prediction engine, which re-sweeps only the nodes
// an edit touches instead of repredicting the whole plant (the
// core_predict_* metrics in -metrics-out show full vs incremental sweep
// counts).
//
// Usage:
//
//	foreman [-heuristic stay-put|ffd|bfd|wfd] [-fail node] [-policy minimal|reshuffle]
//	        [-move run=node] [-scripts] [-hindcast n] [-sql query] [-now hour]
//	        [-slo] [-metrics-out file] [-trace-out file]
//	        [-harvest dir] [-provenance code-version] [-utilization] [-serving]
//
// -utilization replays today's plan on a simulated plant with each run
// carrying its spec's true work: the usage sampler records per-node
// CPU-share timelines (rendered as a heatmap), detects contention and
// idle windows, and the drift report compares every observed completion
// against ForeMan's prediction. Timelines land in the node_usage table
// and drift records in the drift table (schema v3), both queryable in a
// later -sql invocation's database when combined with -harvest trees.
//
// -serving exercises the public product-serving edge: a two-day
// synthetic crowd (diurnal cycle plus a flash crowd on the plant's
// highest-priority region, with the day-1 forecast deliberately late)
// hits a TTL cache with request coalescing and deadline-aware load
// shedding. The report shows hit rate, staleness-at-delivery
// percentiles, shed fractions by tier, the per-product breakdown, and
// the demand-feedback priority table; results persist to the
// serving_stats table (schema v7) for a same-invocation -sql query.
//
// The -sql flag accepts the statsdb SELECT subset, including JOINs against
// the nodes table and EXPLAIN; the bootstrap campaign's trace spans are
// loaded into a "spans" table queryable the same way, and the control-room
// monitor's alert history into an "alerts" table joinable against runs.
// -slo prints the monitor's deadline-attainment report and alert history
// for the bootstrap campaign.
//
// Run records reach the database through the incremental harvest
// pipeline in both modes: the bootstrap campaign's virtual run tree is
// harvested in place, while -harvest <dir> ingests a real directory tree
// (for example one written by `factory -runs-dir`), keeping a watermark
// journal and a record snapshot (<dir>/.harvest-journal.jsonl and
// .harvest-snapshot.jsonl) so repeated invocations only re-read logs that
// changed. -provenance answers the paper's manageability query —
// which forecasts used a given code version — from the harvested rows.
package main

import (
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engineprof"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/forensics"
	"repro/internal/harvest"
	"repro/internal/logs"
	"repro/internal/monitor"
	"repro/internal/plot"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/spc"
	"repro/internal/statsdb"
	"repro/internal/telemetry"
	"repro/internal/usage"
	"repro/internal/vfs"
)

// plantSpecs builds the paper's ten daily forecasts.
func plantSpecs() []*forecast.Spec {
	mk := func(name, region string, ts, sides, products, prio int, startHour float64) *forecast.Spec {
		s := forecast.NewSpec(name, region, ts, sides, products)
		s.StartOffset = startHour * 3600
		s.Priority = prio
		return s
	}
	return []*forecast.Spec{
		forecast.Tillamook(),
		mk("forecast-columbia", "columbia", 5760, 28000, 8, 8, 2),
		mk("forecast-yaquina", "yaquina", 4320, 20000, 6, 5, 3),
		mk("forecast-newport", "newport", 4320, 18000, 6, 5, 3),
		mk("forecast-coos-bay", "coos-bay", 3600, 18000, 6, 4, 4),
		mk("forecast-willapa", "willapa", 3600, 16000, 6, 4, 4),
		mk("forecast-grays", "grays-harbor", 2880, 16000, 4, 3, 3),
		mk("forecast-nehalem", "nehalem", 2880, 14000, 4, 3, 5),
		mk("forecast-umpqua", "umpqua", 2880, 12000, 4, 2, 5),
		forecast.Dev(),
	}
}

func heuristicByName(name string) (core.Heuristic, bool) {
	switch name {
	case "stay-put":
		return core.StayPut, true
	case "ffd":
		return core.FirstFitDecreasing, true
	case "bfd":
		return core.BestFitDecreasing, true
	case "wfd":
		return core.WorstFitDecreasing, true
	default:
		return 0, false
	}
}

func main() {
	heuristicFlag := flag.String("heuristic", "stay-put", "assignment heuristic: stay-put, ffd, bfd, wfd")
	failNode := flag.String("fail", "", "simulate failure of this node and reschedule")
	policyFlag := flag.String("policy", "minimal", "rescheduling policy after failure: minimal or reshuffle")
	moveFlag := flag.String("move", "", "what-if move, run=node")
	scriptsFlag := flag.Bool("scripts", false, "print the generated staging scripts")
	sqlFlag := flag.String("sql", "", "run a SQL query against the harvested statistics database")
	nowHour := flag.Float64("now", 9, "current time of day (hours) for the Gantt marker")
	bootstrapDays := flag.Int("bootstrap", 3, "days of history to simulate before planning")
	hindcasts := flag.Int("hindcast", 0, "backfill this many hindcast jobs into idle capacity")
	metricsOut := flag.String("metrics-out", "", "write bootstrap + planner metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "write the bootstrap + planner trace as Chrome trace-event JSON to this file")
	sloFlag := flag.Bool("slo", false, "print the control-room SLO report and alert history for the bootstrap campaign")
	harvestDir := flag.String("harvest", "", "harvest run logs incrementally from this real directory tree instead of bootstrapping a simulated campaign")
	provenanceFlag := flag.String("provenance", "", "report every forecast using this code version from the harvested database, then exit")
	utilizationFlag := flag.String("utilization", "", "replay today's plan on a simulated plant, print the utilization report, heatmap, contention windows, and plan-vs-actual drift for this forecast (\"all\" for every run), and persist node_usage + drift tables")
	blameFlag := flag.String("blame", "", "print the lateness-blame forensics report for this forecast (\"all\" for every forecast) from the bootstrap campaign")
	spcFlag := flag.String("spc", "", "print the SPC control-chart report (run rules, changepoints) for this forecast (\"all\" for every series) from the bootstrap campaign")
	engineProfFlag := flag.Bool("engineprof", false, "attach the kernel profiler to the bootstrap campaign (and the -utilization replay) and print the per-label hotspot report with the queue-depth chart")
	servingFlag := flag.Bool("serving", false, "run the public product-serving edge against a two-day synthetic crowd (diurnal load plus a flash crowd, late day-1 forecast), print the serving-quality and demand-feedback report, and persist the serving_stats table")
	pprofOut := flag.String("pprof", "", "write a CPU profile covering this invocation's replay paths to this file (batch-mode mirror of the factory's /debug/pprof endpoints)")
	flag.Parse()

	h, ok := heuristicByName(*heuristicFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown heuristic %q\n", *heuristicFlag)
		os.Exit(2)
	}

	// -pprof profiles the whole invocation: bootstrap replay, planning,
	// and the -utilization replay. The profile is finalized on the
	// success path; error paths exit through os.Exit and leave a
	// truncated file, which pprof rejects loudly rather than misreads.
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *pprofOut)
		}()
	}

	// 1. History: either harvest a real directory tree incrementally, or
	// bootstrap one by running the factory for a few days and harvesting
	// its virtual run tree — the pipeline replacement for the nightly
	// one-shot Perl crawlers.
	specs := plantSpecs()
	nodeSpecs := factory.DefaultNodes()
	// A flag naming a forecast the plant has never heard of would render
	// an empty report; fail fast with the roster instead.
	for _, f := range []struct{ name, value string }{
		{"blame", *blameFlag}, {"utilization", *utilizationFlag}, {"spc", *spcFlag},
	} {
		if err := validateForecastFlag(f.name, f.value, specs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// -sql turns collection on too: the bootstrap trace becomes the
	// "spans" table, queryable whether or not an export file was asked
	// for.
	var tel *telemetry.Telemetry
	if *metricsOut != "" || *traceOut != "" || *sqlFlag != "" || *sloFlag || *blameFlag != "" || *spcFlag != "" {
		tel = telemetry.New()
		core.SetTelemetry(tel)
		defer core.SetTelemetry(nil)
	}

	db := statsdb.NewDB()
	var records []*logs.RunRecord
	var mon *monitor.Monitor
	var kprof *engineprof.Profiler

	if *harvestDir != "" {
		if *blameFlag != "" {
			fmt.Fprintln(os.Stderr, "-blame needs the bootstrap campaign's trace and timeline; it is ignored with -harvest")
		}
		if *spcFlag != "" {
			fmt.Fprintln(os.Stderr, "-spc needs the bootstrap campaign's monitor and timeline; it is ignored with -harvest")
		}
		if *engineProfFlag {
			fmt.Fprintln(os.Stderr, "-engineprof profiles the bootstrap campaign's engine; it is ignored with -harvest")
		}
		records = harvestOSTree(db, *harvestDir)
	} else {
		assignments := make([]factory.Assignment, len(specs))
		for i, s := range specs {
			assignments[i] = factory.Assignment{Spec: s, Node: nodeSpecs[i%len(nodeSpecs)].Name}
		}
		campaign, err := factory.New(factory.Config{
			Days:      *bootstrapDays,
			Nodes:     nodeSpecs,
			Forecasts: assignments,
			Telemetry: tel,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *engineProfFlag {
			kprof = engineprof.New()
			campaign.Engine().SetProbe(kprof)
		}
		// The control room watches the bootstrap campaign: its alert history
		// becomes the "alerts" table and its SLO report backs -slo.
		if tel != nil {
			opts := monitor.DefaultOptions()
			// A day whose dominant lateness cause differs from the
			// previous day's is an assignable-cause signal; -blame feeds
			// the per-day decomposition back into this rule.
			opts.Blame = monitor.BlameShiftRule{MinLateness: 600, Severity: monitor.SevWarning}
			// -spc streams the observatory's verdicts into the alert book.
			opts.OutOfControl = monitor.OutOfControlRule{Enabled: true, Severity: monitor.SevWarning}
			opts.Changepoint = monitor.ChangepointRule{Enabled: true, Severity: monitor.SevWarning}
			mon = monitor.New(opts, tel.Registry())
			mon.Attach(campaign)
		}
		var samp *usage.Sampler
		if *blameFlag != "" || *spcFlag != "" {
			// -blame splits lateness into contention vs failure and -spc
			// charts per-node mean share, so both need the per-node share
			// and downtime timeline sampled while the campaign runs.
			campaign.Prepare()
			samp = usage.NewSampler(campaign.Cluster(), usage.Options{Interval: 900, Telemetry: tel})
			samp.Start(campaign.Horizon())
		}
		campaign.Run()
		if mon != nil {
			mon.Finalize(campaign.Engine().Now())
		}
		if samp != nil {
			samp.Finalize(campaign.Engine().Now())
		}
		// Harvest the campaign's run tree into the database (watermarked
		// and quarantining, like the continuous pipeline would).
		h, err := harvest.New(campaign.FS(), db,
			harvest.NewVFSJournal(campaign.FS(), "/harvest/journal.jsonl"),
			harvest.Options{Telemetry: tel, Clock: campaign.Engine().Now})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := h.Pass()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, q := range h.Quarantine() {
			fmt.Fprintf(os.Stderr, "quarantined: %s (%s)\n", q.Path, q.Error)
		}
		records, err = h.Records()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("bootstrapped %d run records over %d days (%d quarantined)\n",
			len(records), *bootstrapDays, st.Quarantined)
		if tel != nil {
			// The bootstrap trace is queryable alongside the run records.
			if _, err := statsdb.LoadSpans(db, tel.Trace().Spans()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *blameFlag != "" {
			// Before LoadAlerts, so any blame_shift alert the forensics
			// raise lands in the alerts table too.
			blameForensics(db, campaign, mon, samp, tel, specs, *blameFlag)
		}
		if *spcFlag != "" {
			// Likewise before LoadAlerts: out_of_control and changepoint
			// alerts join the persisted alert history.
			spcReport(db, campaign, mon, samp, *spcFlag)
		}
		if mon != nil {
			// Control-room alert history joins against runs via -sql.
			if _, err := monitor.LoadAlerts(db, mon.Alerts()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if kprof != nil {
		engineprofReport(db, kprof)
	}

	// Before the -sql early return, so `-serving -sql` can query the
	// freshly loaded serving_stats table.
	if *servingFlag {
		servingReport(db, specs)
	}

	if *provenanceFlag != "" {
		defer flushTelemetry(tel, *metricsOut, *traceOut)
		p, err := harvest.QueryProvenance(db, *provenanceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(p.String())
		return
	}
	if *sloFlag && mon != nil {
		fmt.Println("\nSLO report (deadline attainment):")
		fmt.Print(mon.Report())
		alerts := mon.Alerts()
		fmt.Printf("\nalert history: %d alerts\n", len(alerts))
		for _, a := range alerts {
			resolved := "still firing"
			if a.ResolvedAt > 0 {
				resolved = fmt.Sprintf("resolved %6.1fh", a.ResolvedAt/3600)
			}
			fmt.Printf("  #%-3d %-8s %-10s %-24s day %3d fired %6.1fh %-16s %s\n",
				a.ID, a.Severity, a.Rule, a.Forecast, a.Day, a.FiredAt/3600, resolved, a.Message)
		}
	}
	// With -utilization the query is deferred until after the replay has
	// populated the node_usage and drift tables it most likely targets.
	if *sqlFlag != "" && *utilizationFlag == "" {
		defer flushTelemetry(tel, *metricsOut, *traceOut)
		runSQL(db, *sqlFlag)
		return
	}

	// 2. Estimate today's runs from history and pack them.
	nodes := make([]core.NodeInfo, len(nodeSpecs))
	for i, ns := range nodeSpecs {
		nodes[i] = core.NodeInfo{Name: ns.Name, CPUs: ns.CPUs, Speed: ns.Speed}
	}
	estimator := core.NewEstimator(records, nodes)
	runs := estimator.PlanRuns(specs, nodes)

	// Replay the estimator against history: how far off would ForeMan's
	// predictions have been for the runs we already know the answer to?
	acc := core.EvaluateEstimates(records, nodes)
	if len(acc.Samples) > 0 {
		fmt.Printf("estimate accuracy: MAPE %.2f%% over %d replayed runs\n", acc.MAPE, len(acc.Samples))
	}

	schedule, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: h, AllowDrop: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 3. What-if interactions.
	if *moveFlag != "" {
		run, node, ok := strings.Cut(*moveFlag, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "-move wants run=node, got %q\n", *moveFlag)
			os.Exit(2)
		}
		makespanBefore := schedule.Prediction.Makespan()
		if err := schedule.Move(run, node); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("what-if: moved %s to %s (makespan %.0fs → %.0fs)\n",
			run, node, makespanBefore, schedule.Prediction.Makespan())
	}
	if *failNode != "" {
		pol := core.MinimalMove
		if *policyFlag == "reshuffle" {
			pol = core.FullReshuffle
		}
		before := schedule
		schedule, err = core.RescheduleAfterFailure(schedule, *failNode, pol, h)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("node %s failed; policy %s moved runs: %s\n",
			*failNode, pol, strings.Join(core.MovedRuns(before, schedule), ", "))
	}

	if *hindcasts > 0 {
		jobs := make([]core.BackfillJob, *hindcasts)
		for i := range jobs {
			jobs[i] = core.BackfillJob{
				Name: fmt.Sprintf("hindcast-%02d", i+1),
				Work: 30000,
			}
		}
		placed, skipped, err := core.PlanBackfill(schedule, jobs, 2*86400)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("backfill: placed %d hindcast jobs, skipped %d\n", len(placed), len(skipped))
		for _, p := range placed {
			fmt.Printf("  %-14s on %-8s start %7.0f done %7.0f\n", p.Job.Name, p.Node, p.Start, p.Completion)
		}
	}

	// 4. Report.
	fmt.Println()
	fmt.Print(core.RoughCut(schedule.Plan.Nodes, schedule.Plan.Runs, 86400, schedule.Plan.Assign))

	fmt.Printf("\nheuristic: %s\n", h)
	if len(schedule.Dropped) > 0 {
		fmt.Printf("dropped (low priority, capacity short): %s\n", strings.Join(schedule.Dropped, ", "))
	}
	if late := schedule.Late(); len(late) > 0 {
		fmt.Printf("LATE: %s\n", strings.Join(late, ", "))
	} else {
		fmt.Println("all runs predicted to meet their deadlines")
	}

	var bars []plot.GanttBar
	var names []string
	for _, r := range schedule.Plan.Runs {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		r, _ := schedule.Plan.Run(name)
		bars = append(bars, plot.GanttBar{
			Node:  schedule.Plan.Assign[name],
			Run:   name,
			Start: r.Start,
			End:   schedule.Prediction.Completion[name],
		})
	}
	fmt.Println()
	fmt.Print(plot.Gantt{Title: "today's plan (predicted completions)", Bars: bars, Now: *nowHour * 3600, Horizon: 86400}.Render())

	if *utilizationFlag != "" {
		utilizationReplay(schedule, specs, db, tel, *utilizationFlag, *engineProfFlag)
		if *sqlFlag != "" {
			fmt.Println()
			runSQL(db, *sqlFlag)
		}
	}

	if *scriptsFlag {
		scripts, err := core.ShellBackend{Repository: "/repository"}.Generate(schedule)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(core.RenderScripts(scripts))
	}

	flushTelemetry(tel, *metricsOut, *traceOut)
}

// runSQL prints a query's result table, exiting 1 on a bad query.
func runSQL(db *statsdb.DB, query string) {
	res, err := db.Query(query)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
}

// validateForecastFlag rejects a forecast-selecting flag value that names
// no forecast on the plant's roster ("" = flag unused, "all" = every
// forecast): an unknown name would otherwise render an empty report.
func validateForecastFlag(flagName, value string, specs []*forecast.Spec) error {
	if value == "" || value == "all" {
		return nil
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		if s.Name == value {
			return nil
		}
		names[i] = s.Name
	}
	return fmt.Errorf("foreman: -%s: unknown forecast %q (known: %s, or \"all\")",
		flagName, value, strings.Join(names, ", "))
}

// utilizationReplay executes today's plan on a simulated plant and
// compares what happened against what ForeMan predicted. Each assigned
// run launches at its earliest start on its planned node, carrying the
// spec's true work (not the estimator's figure) — so the replay drifts
// from the plan exactly the way reality does: through estimate error and
// CPU-share contention. The usage sampler records the per-node timeline;
// drift joins the observed completions against the prediction; both
// persist into the statistics database (schema v3) for -sql queries.
// forecastName narrows the drift report ("all" = every run); the replay,
// the heatmap, and the persisted tables always cover the whole plan.
func utilizationReplay(schedule *core.Schedule, specs []*forecast.Spec, db *statsdb.DB, tel *telemetry.Telemetry, forecastName string, profile bool) {
	eng := sim.NewEngine()
	if tel != nil {
		eng.Instrument(tel.Registry())
	}
	var kprof *engineprof.Profiler
	if profile {
		kprof = engineprof.New()
		eng.SetProbe(kprof)
	}
	cl := cluster.New(eng)
	for _, n := range schedule.Plan.Nodes {
		node := cl.AddNode(n.Name, n.CPUs, n.Speed)
		if n.Down {
			node.Fail()
		}
	}
	samp := usage.NewSampler(cl, usage.Options{Interval: 900, Telemetry: tel, StatusCols: 96})

	specOf := make(map[string]*forecast.Spec, len(specs))
	for _, s := range specs {
		specOf[s.Name] = s
	}
	replaySched := eng.Scope("replay")
	var outcomes []usage.Outcome
	for _, r := range schedule.Plan.Runs {
		nodeName, ok := schedule.Plan.Assign[r.Name]
		if !ok {
			continue // dropped by the planner: nothing to replay
		}
		run := r
		node := cl.Node(nodeName)
		work := run.Work
		if s := specOf[run.Name]; s != nil {
			work = s.TotalWork()
		}
		replaySched.At(run.Start, func() {
			start := eng.Now()
			done := func() {
				outcomes = append(outcomes, usage.Outcome{
					Run: run.Name, Node: nodeName,
					Start: start, End: eng.Now(), Finished: true,
				})
			}
			if run.Width > 1 {
				node.SubmitParallel(run.Name, work, run.Width, done)
			} else {
				node.Submit(run.Name, work, done)
			}
		})
	}

	horizon := 86400.0
	for _, c := range schedule.Prediction.Completion {
		if !math.IsInf(c, 0) && c*1.5 > horizon {
			horizon = c * 1.5
		}
	}
	samp.Start(horizon)
	eng.Run()
	samp.Finalize(eng.Now())

	fmt.Println("\nutilization replay (plan executed with true work):")
	fmt.Print(samp.Report(5))
	st := samp.Status()
	fmt.Println()
	fmt.Print(plot.Heatmap{
		Title: "node utilization heatmap (15 min per column)",
		Rows:  st.Grid.Nodes,
		Start: st.Grid.Start,
		Step:  st.Grid.Step,
		Cells: st.Grid.Utilization,
		Width: 96,
	}.Render())

	drifts := usage.ComputeDrift(schedule.Plan, schedule.Prediction, outcomes, samp)
	shown := drifts
	if forecastName != "all" {
		shown = nil
		for _, d := range drifts {
			if d.Run == forecastName {
				shown = append(shown, d)
			}
		}
	}
	fmt.Println()
	fmt.Print(usage.DriftReport(shown))

	if _, err := usage.LoadSamples(db, samp.Samples()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := usage.LoadDrift(db, drifts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("persisted: node_usage %d rows, drift %d rows (schema v%d; query with -sql)\n",
		db.Table(usage.NodeUsageTableName).Len(), db.Table(usage.DriftTableName).Len(),
		statsdb.SchemaVersion(db))

	if kprof != nil {
		// The replay engine's profile renders live (the statsdb rows hold
		// the bootstrap campaign's profile; mixing two engines' rows under
		// the same labels would double-count).
		rep := kprof.Report()
		fmt.Println("\nengine observatory (utilization replay):")
		fmt.Print(engineprof.SummaryTable(rep, 10))
		fmt.Println()
		fmt.Print(engineprof.DepthChart(rep))
	}
}

// engineprofReport persists the bootstrap campaign's kernel profile into
// the v6 tables and re-reads it before rendering, so this output, the
// statsdb rows, and the monitor's /api/engine endpoint agree — the same
// discipline as -blame and -spc.
func engineprofReport(db *statsdb.DB, kprof *engineprof.Profiler) {
	if err := engineprof.LoadReport(db, kprof.Report()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := engineprof.ReadReport(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nengine observatory (bootstrap campaign):")
	fmt.Print(engineprof.SummaryTable(rep, 10))
	fmt.Println()
	fmt.Print(engineprof.HistTable(rep, 10))
	fmt.Println()
	fmt.Print(engineprof.DepthChart(rep))
	fmt.Printf("persisted: %s %d rows, %s %d rows (schema v%d; query with -sql)\n",
		engineprof.ProfileTableName, db.Table(engineprof.ProfileTableName).Len(),
		engineprof.DepthTableName, db.Table(engineprof.DepthTableName).Len(),
		statsdb.SchemaVersion(db))
}

// blameForensics reconstructs the bootstrap campaign's causal chains and
// prints the lateness forensics: the per-run blame decomposition, the
// per-day aggregate with its stacked blame-mix bar, and the worst run's
// critical path as a Gantt. The analysis is persisted into the v4 tables
// (lateness_blame, critical_paths) first and the report re-read from
// them, so this output and the monitor's /api/forensics endpoint render
// the same rows. Each day's dominant cause also feeds the monitor's
// blame-shift rule, whose alerts join the alert history.
func blameForensics(db *statsdb.DB, campaign *factory.Campaign, mon *monitor.Monitor,
	samp *usage.Sampler, tel *telemetry.Telemetry, specs []*forecast.Spec, forecastName string) {
	if forecastName == "all" {
		forecastName = ""
	}
	specOf := make(map[string]*forecast.Spec, len(specs))
	for _, s := range specs {
		specOf[s.Name] = s
	}
	// The plan blame is measured against is the one the control room
	// watched: the launch rule (day start + spec offset) for the planned
	// start, the launch-time completion prediction for the planned end,
	// and the SLO deadline. Runs the monitor never saw launch (dropped)
	// get a zero-length plan window and are analyzed as unplanned.
	var plan []forensics.PlanEntry
	for _, r := range mon.Status().Runs {
		start := r.Start
		if s := specOf[r.Forecast]; s != nil {
			start = float64(r.Day-campaign.StartDay())*factory.SecondsPerDay + s.StartOffset
		}
		end := r.LaunchETA
		if end == 0 {
			end = r.ETA
		}
		plan = append(plan, forensics.PlanEntry{
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Start: start, End: end, Deadline: r.Deadline,
		})
	}
	rep, err := forensics.Analyze(forensics.Input{
		Spans:    tel.Trace().Spans(),
		Plan:     plan,
		Timeline: samp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := forensics.LoadReport(db, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err = forensics.ReadReport(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nlateness blame%s (schema v%d; tables lateness_blame, critical_paths):\n",
		blameForClause(forecastName), statsdb.SchemaVersion(db))
	fmt.Print(forensics.BlameTable(rep, forecastName))
	fmt.Println("\nper-day blame mix:")
	fmt.Print(forensics.DayTable(rep, 40))
	if worst := forensics.WorstRun(rep, forecastName); worst != nil {
		fmt.Println()
		fmt.Print(forensics.PathGantt(worst))
	}

	for _, d := range rep.Days {
		mon.ObserveBlame(d.Day, d.Dominant, d.Lateness)
	}
	for _, a := range mon.FiringAlerts() {
		if a.Rule == "blame_shift" {
			fmt.Printf("\nALERT %s %s: %s\n", a.Severity, a.Rule, a.Message)
		}
	}
}

func blameForClause(forecastName string) string {
	if forecastName == "" {
		return ""
	}
	return " for " + forecastName
}

// spcReport runs the SPC observatory over the bootstrap campaign's vital
// signs and prints the control-chart report. Baselines are seeded from
// the harvested runs table (segmented at code-version changes); the
// campaign's completed runs then stream through the charts in completion
// order — walltime, estimate error, plan-vs-actual drift, daily
// lateness, and per-node daily mean share. The observatory's verdicts
// feed the monitor's out_of_control/changepoint rules as they happen,
// the snapshot persists into the v5 tables (control_points,
// changepoints), and the report is re-read from them — so this output
// and the monitor's /api/spc endpoint render the same rows.
func spcReport(db *statsdb.DB, campaign *factory.Campaign, mon *monitor.Monitor,
	samp *usage.Sampler, forecastName string) {
	subject := forecastName
	if subject == "all" {
		subject = ""
	}
	obs := spc.New(spc.DefaultParams())
	fits, err := obs.SeedFromDB(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	obs.OnEvent(func(e spc.Event) {
		if cp := e.Changepoint; cp != nil {
			mon.ObserveChangepoint(e.Kind, e.Subject, cp.Day, cp.DetectedDay, cp.Cause, cp.Before, cp.After)
		}
		mon.ObserveControl(e.Kind, e.Subject, e.Point.Day, e.SeriesOut, e.Point.Value, e.Point.Center, e.Point.Rules.Names())
	})
	// The replan-trigger seam: a drift series leaving control means the
	// plan the factory is executing no longer predicts reality.
	obs.OnReplan(func(e spc.Event) {
		fmt.Printf("REPLAN trigger: drift/%s out of control on day %d (%+.0fs against plan)\n",
			e.Subject, e.Point.Day, e.Point.Value)
	})

	// Stream completed runs through the charts in completion order.
	runs := mon.Status().Runs
	sort.Slice(runs, func(i, j int) bool { return runs[i].End < runs[j].End })
	for _, r := range runs {
		if r.End == 0 {
			continue // never completed: nothing to chart
		}
		var estWall float64
		if r.LaunchETA > r.Start {
			estWall = r.LaunchETA - r.Start
		}
		obs.ObserveRun(spc.RunObs{
			Forecast: r.Forecast, Day: r.Day, Node: r.Node,
			Walltime: r.Walltime, EstimatedWalltime: estWall,
			End: r.End, Deadline: r.Deadline,
		})
		if r.LaunchETA > 0 {
			obs.ObserveDrift(r.Forecast, r.Day, r.End, r.End-r.LaunchETA)
		}
	}
	// Per-node daily mean share from the usage timeline.
	for day := campaign.StartDay(); day < campaign.StartDay()+campaign.Days(); day++ {
		d0 := float64(day-campaign.StartDay()) * factory.SecondsPerDay
		d1 := d0 + factory.SecondsPerDay
		for _, n := range campaign.Cluster().Nodes() {
			obs.ObserveNodeShare(n.Name(), day, d1, samp.MeanShareOver(n.Name(), d0, d1))
		}
	}
	obs.Finalize()

	if err := spc.LoadReport(db, obs.Report()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep, err := spc.ReadReport(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep = spc.FilterSubject(rep, subject)

	fmt.Printf("\nprocess control%s (schema v%d; tables control_points, changepoints; %d history baselines):\n",
		blameForClause(subject), statsdb.SchemaVersion(db), len(fits))
	fmt.Print(spc.SummaryTable(rep))
	fmt.Println()
	fmt.Print(spc.ChangepointTable(rep))
	for i := range rep.Series {
		sr := &rep.Series[i]
		// For the full-plant view, chart only the series with something
		// to say; a named forecast gets all of its charts.
		if subject == "" && !sr.Out && sr.Violations == 0 && len(sr.Changepoints) == 0 {
			continue
		}
		fmt.Println()
		fmt.Print(spc.SeriesChart(sr, 72, 14))
	}
	for _, a := range mon.FiringAlerts() {
		if a.Rule == "out_of_control" || a.Rule == "changepoint" {
			fmt.Printf("\nALERT %s %s: %s\n", a.Severity, a.Rule, a.Message)
		}
	}
}

// servingReport runs the public product-serving edge against a synthetic
// two-day crowd — diurnal load, a flash crowd on the plant's
// highest-priority region, and a deliberately late day-1 forecast — and
// prints the serving-quality report. The edge's admission oracle reuses
// the on-demand deadline policy, so the report also states whether any
// made-to-stock deadline was displaced by render load, and the demand
// table shows how the observed crowd would re-rank forecast priorities
// for the next planning cycle.
func servingReport(db *statsdb.DB, specs []*forecast.Spec) {
	base := make(map[string]int, len(specs))
	for _, s := range specs {
		base[s.Region] = s.Priority
	}
	// The flash crowd hits the plant's highest-priority region.
	stormRegion := ""
	for r, p := range base {
		if stormRegion == "" || p > base[stormRegion] ||
			(p == base[stormRegion] && r < stormRegion) {
			stormRegion = r
		}
	}
	cfg := serving.ScenarioConfig{
		Days:     2,
		Users:    300000,
		Products: serving.DefaultProducts(base),
		LateDay:  1,
		LateBy:   2 * 3600,
		Load: serving.LoadConfig{
			Storms: []serving.Storm{{
				Start: 86400 + 7*3600, Duration: 5 * 3600, Multiplier: 6,
				Forecast: stormRegion,
			}},
		},
	}
	res, err := serving.RunScenario(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := serving.LoadReport(db, res.Stats); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nproduct serving edge (schema v%d; table serving_stats): %d users over %d days, storm on %s, day-1 forecast %.0fh late\n",
		statsdb.SchemaVersion(db), cfg.Users, cfg.Days, stormRegion, cfg.LateBy/3600)
	fmt.Print(serving.SummaryTable(res.Stats))
	fmt.Println()
	fmt.Print(serving.ProductTable(res.Stats, 10))
	fmt.Println()
	fmt.Print(serving.DemandTable(base, res.Demand))
	if len(res.StockLate) == 0 {
		fmt.Printf("made-to-stock protection: all %d stock runs met their deadlines under render load\n",
			len(res.StockCompletion))
	} else {
		fmt.Printf("made-to-stock runs displaced by render load: %s\n",
			strings.Join(res.StockLate, ", "))
	}
}

// osFS adapts a real directory tree to the harvester's FS interface,
// mounting the tree root at "/runs" so journal paths and source_path
// columns stay stable no matter where the tree lives on disk. ReadFile
// only touches disk when the harvester asks, so watermark hits cost one
// stat, not one read.
type osFS struct{ root string }

func (o osFS) real(vpath string) string {
	return filepath.Join(o.root, filepath.FromSlash(strings.TrimPrefix(vpath, "/runs")))
}

func (o osFS) Walk(root string, fn func(vfs.FileInfo) error) error {
	return filepath.WalkDir(o.root, func(p string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return err
		}
		vpath := "/runs"
		if rel != "." {
			vpath = "/runs/" + filepath.ToSlash(rel)
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		return fn(vfs.FileInfo{
			Path:  vpath,
			Name:  d.Name(),
			Size:  info.Size(),
			MTime: float64(info.ModTime().Unix()),
			IsDir: d.IsDir(),
		})
	})
}

func (o osFS) ReadFile(path string) (string, error) {
	data, err := os.ReadFile(o.real(path))
	return string(data), err
}

func (o osFS) Exists(path string) bool {
	_, err := os.Stat(o.real(path))
	return err == nil
}

// harvestOSTree runs one incremental harvest pass over a real directory
// tree and returns the accumulated records. The journal and a record
// snapshot both live inside the tree, so repeated invocations re-read
// only logs that changed: the snapshot warms the in-memory database and
// the journal's watermarks vouch for its rows.
func harvestOSTree(db *statsdb.DB, root string) []*logs.RunRecord {
	if _, err := os.Stat(root); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	snapshot := filepath.Join(root, ".harvest-snapshot.jsonl")
	if _, err := harvest.LoadSnapshot(db, snapshot); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h, err := harvest.New(osFS{root: root}, db,
		harvest.NewOSJournal(filepath.Join(root, ".harvest-journal.jsonl")),
		harvest.Options{Clock: func() float64 { return float64(time.Now().Unix()) }})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, err := h.Pass()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("harvest %s: scanned %d, ingested %d, updated %d, unchanged %d, quarantined %d\n",
		root, st.Scanned, st.Ingested, st.Updated, st.WatermarkHits, st.Quarantined)
	for _, q := range h.Quarantine() {
		fmt.Fprintf(os.Stderr, "quarantined: %s (%s)\n", q.Path, q.Error)
	}
	records, err := h.Records()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := harvest.SaveSnapshot(snapshot, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return records
}

// flushTelemetry writes the telemetry exports requested on the command
// line (no-op when telemetry is disabled).
func flushTelemetry(tel *telemetry.Telemetry, metricsOut, traceOut string) {
	if tel == nil {
		return
	}
	if metricsOut != "" {
		if err := writeTo(metricsOut, tel.Registry().WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics written to %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := writeTo(traceOut, tel.Trace().WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s (%d spans; open in chrome://tracing)\n",
			traceOut, tel.Trace().Len())
	}
}

// writeTo writes one exporter's output to a file.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
