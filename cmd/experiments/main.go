// Command experiments regenerates the paper's evaluation: every figure
// (6–9) and in-text result (t1–t5), printing ASCII charts with
// paper-vs-measured comparison tables and optionally writing CSV data.
//
// Usage:
//
//	experiments [-id all|fig6|fig7|fig8|fig9|t1|t2|t3|t4|t5] [-csv dir] [-quiet]
//	            [-metrics-out file] [-trace-out file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	id := flag.String("id", "all", "experiment to run (all, fig6..fig9, t1..t5, x1..x3, or a comma list)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files into")
	quiet := flag.Bool("quiet", false, "print only the comparison tables, no charts")
	markdown := flag.String("markdown", "", "also write a paper-vs-measured markdown summary to this file")
	metricsOut := flag.String("metrics-out", "", "write Prometheus metrics from the experiment runs to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the experiment runs to this file")
	flag.Parse()

	// Same collection switch as cmd/factory and cmd/foreman: asking for
	// an export turns telemetry on, so paper-figure runs leave traces the
	// forensics layer can consume.
	var tel *telemetry.Telemetry
	if *metricsOut != "" || *traceOut != "" {
		tel = telemetry.New()
		experiments.SetTelemetry(tel)
		defer experiments.SetTelemetry(nil)
	}

	var reports []experiments.Report
	switch {
	case *id == "all":
		reports = experiments.All()
	case *id == "extensions":
		reports = experiments.Extensions()
	default:
		for _, one := range strings.Split(*id, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(one))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					one, strings.Join(experiments.IDs(), " "))
				os.Exit(2)
			}
			reports = append(reports, r)
		}
	}

	for _, r := range reports {
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		if *quiet {
			fmt.Println(r.Table())
		} else {
			fmt.Println(r.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if *markdown != "" {
		if err := os.WriteFile(*markdown, []byte(experiments.MarkdownSummary(reports)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *markdown)
	}

	flushTelemetry(tel, *metricsOut, *traceOut)
}

// flushTelemetry writes the telemetry exports requested on the command
// line (no-op when telemetry is disabled).
func flushTelemetry(tel *telemetry.Telemetry, metricsOut, traceOut string) {
	if tel == nil {
		return
	}
	tel.Trace().EndOpen()
	if metricsOut != "" {
		if err := writeTo(metricsOut, tel.Registry().WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", metricsOut)
	}
	if traceOut != "" {
		if err := writeTo(traceOut, tel.Trace().WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d spans; open in chrome://tracing)\n",
			traceOut, tel.Trace().Len())
	}
}

// writeTo writes one exporter's output to a file.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
