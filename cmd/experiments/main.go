// Command experiments regenerates the paper's evaluation: every figure
// (6–9) and in-text result (t1–t5), printing ASCII charts with
// paper-vs-measured comparison tables and optionally writing CSV data.
//
// Usage:
//
//	experiments [-id all|fig6|fig7|fig8|fig9|t1|t2|t3|t4|t5] [-csv dir] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment to run (all, fig6..fig9, t1..t5, x1..x3, or a comma list)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files into")
	quiet := flag.Bool("quiet", false, "print only the comparison tables, no charts")
	markdown := flag.String("markdown", "", "also write a paper-vs-measured markdown summary to this file")
	flag.Parse()

	var reports []experiments.Report
	switch {
	case *id == "all":
		reports = experiments.All()
	case *id == "extensions":
		reports = experiments.Extensions()
	default:
		for _, one := range strings.Split(*id, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(one))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
					one, strings.Join(experiments.IDs(), " "))
				os.Exit(2)
			}
			reports = append(reports, r)
		}
	}

	for _, r := range reports {
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		if *quiet {
			fmt.Println(r.Table())
		} else {
			fmt.Println(r.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if *markdown != "" {
		if err := os.WriteFile(*markdown, []byte(experiments.MarkdownSummary(reports)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *markdown)
	}
}
