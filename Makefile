# Build and verification entry points. `make check` is the full gate:
# the tier-1 suite (ROADMAP.md) plus static analysis and the race
# detector over every package.

GO ?= go

.PHONY: all build test check vet race bench clean

all: build

build:
	$(GO) build ./...

# Tier-1: what every change must keep green.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The telemetry registry and tracer accept concurrent writers; the race
# detector is the test that proves it.
race:
	$(GO) test -race ./...

check: test vet race

# Experiment benchmarks plus the machine-readable reports uploaded as CI
# artifacts: the harvest pipeline (BENCH_harvest.json), the usage
# sampler's overhead budget (BENCH_usage.json, < 5% slowdown on the
# standard fig8 campaign), the planner's incremental-prediction
# speedup (BENCH_planner.json, ≥ 5× over full repredict on the
# 200-node/2000-run drop loop, with an incremental-vs-full equivalence
# gate), the forensics replay overhead (BENCH_forensics.json, < 5%
# on a 200-node / 2000-run campaign replayed with and without blame
# analysis, ABBA-paired medians), the SPC observatory's overhead
# budget (BENCH_spc.json, < 5% CPU on the same replay streamed with and
# without control charts, min of interleaved rusage samples), and the
# simulation kernel's events/sec trajectory (BENCH_sim.json: replay
# throughput with the kernel profiler detached and attached, < 5%
# profiler overhead, and a ≥ 80%-of-baseline throughput gate against
# the committed BENCH_sim_baseline.json), and the public serving edge's
# storm scenario (BENCH_serving.json: ≥ 1M simulated user requests
# through the cache/coalesce/shed path with a late forecast and a flash
# crowd, gating on zero made-to-stock deadlines displaced).
bench:
	$(GO) test -bench . -benchtime 1x -run xxx . ./internal/core ./internal/engineprof ./internal/forensics ./internal/harvest ./internal/serving ./internal/spc ./internal/usage
	BENCH_OUT=$(CURDIR)/BENCH_harvest.json $(GO) test -run TestEmitBenchReport -v ./internal/harvest
	BENCH_OUT=$(CURDIR)/BENCH_usage.json $(GO) test -count=1 -run TestEmitBenchReport -v ./internal/usage
	BENCH_OUT=$(CURDIR)/BENCH_planner.json $(GO) test -count=1 -run TestEmitPlannerBenchReport -v ./internal/core
	BENCH_OUT=$(CURDIR)/BENCH_forensics.json $(GO) test -count=1 -run TestEmitBenchReport -v ./internal/forensics
	BENCH_OUT=$(CURDIR)/BENCH_spc.json $(GO) test -count=1 -run TestEmitBenchReport -v ./internal/spc
	BENCH_OUT=$(CURDIR)/BENCH_sim.json BENCH_BASELINE=$(CURDIR)/BENCH_sim_baseline.json $(GO) test -count=1 -run TestEmitBenchReport -v ./internal/engineprof
	BENCH_OUT=$(CURDIR)/BENCH_serving.json $(GO) test -count=1 -run TestEmitBenchReport -v ./internal/serving

clean:
	$(GO) clean ./...
