// Package repro_test benchmarks every experiment in the paper's
// evaluation (one benchmark per figure and in-text result) plus ablations
// of the design choices DESIGN.md calls out. Domain results — end-to-end
// seconds, hump peaks, moved-run counts — are attached to each benchmark
// via b.ReportMetric, so `go test -bench . -benchmem` regenerates the
// paper's numbers alongside the harness costs.
package repro_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/experiments"
	"repro/internal/factory"
	"repro/internal/forecast"
	"repro/internal/ondemand"
	"repro/internal/telemetry"
)

// reportComparisons attaches an experiment's paper-vs-measured rows as
// benchmark metrics.
func reportComparisons(b *testing.B, r experiments.Report) {
	b.Helper()
	for i, c := range r.Comparisons {
		b.ReportMetric(c.Measured, fmt.Sprintf("m%d_%s", i, metricUnit(c.Unit)))
	}
}

func metricUnit(unit string) string {
	if unit == "" {
		return "value"
	}
	return unit
}

// BenchmarkFig6 regenerates Figure 6 (Architecture 1 data availability).
func BenchmarkFig6(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6()
	}
	reportComparisons(b, r)
}

// BenchmarkFig7 regenerates Figure 7 (Architecture 2 data availability).
func BenchmarkFig7(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7()
	}
	reportComparisons(b, r)
}

// BenchmarkFig8 regenerates Figure 8 (Tillamook walltime by day).
func BenchmarkFig8(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8()
	}
	reportComparisons(b, r)
}

// BenchmarkFig9 regenerates Figure 9 (dev-forecast walltime by day).
func BenchmarkFig9(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9()
	}
	reportComparisons(b, r)
}

// BenchmarkEndToEnd regenerates the §4.2 18,000 s vs 11,000 s comparison.
func BenchmarkEndToEnd(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.EndToEnd()
	}
	reportComparisons(b, r)
}

// BenchmarkConcurrentProducts regenerates the §4.2 four-concurrent-sets
// result (≈ +3,000 s).
func BenchmarkConcurrentProducts(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.ConcurrentProducts()
	}
	reportComparisons(b, r)
}

// BenchmarkBandwidthShare regenerates the §4.2 ≈20% product-volume share.
func BenchmarkBandwidthShare(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.BandwidthShare()
	}
	reportComparisons(b, r)
}

// BenchmarkPredictor regenerates the §4.1 CPU-sharing validation.
func BenchmarkPredictor(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.PredictorValidation()
	}
	reportComparisons(b, r)
}

// BenchmarkEstimator regenerates the §4.3.2 estimation-accuracy result.
func BenchmarkEstimator(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.EstimatorValidation()
	}
	reportComparisons(b, r)
}

// --- Ablations ---

// BenchmarkPackHeuristics compares the assignment heuristics on the
// paper-scale plant (makespan in seconds as the domain metric).
func BenchmarkPackHeuristics(b *testing.B) {
	nodes := make([]core.NodeInfo, 6)
	for i := range nodes {
		nodes[i] = core.NodeInfo{Name: fmt.Sprintf("fnode%02d", i+1), CPUs: 2, Speed: 1}
	}
	runs := make([]core.Run, 10)
	for i := range runs {
		runs[i] = core.Run{
			Name:     fmt.Sprintf("forecast-%02d", i+1),
			Work:     15000 + float64(i%7)*6000,
			Start:    7200 + float64(i%5)*1800,
			Deadline: 86400,
			Priority: 1 + i%9,
			PrevNode: nodes[i%len(nodes)].Name,
		}
	}
	for _, h := range []core.Heuristic{core.StayPut, core.FirstFitDecreasing, core.BestFitDecreasing, core.WorstFitDecreasing} {
		b.Run(h.String(), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				s, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: h})
				if err != nil {
					b.Fatal(err)
				}
				makespan = s.Prediction.Makespan()
			}
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkReschedulePolicies compares disruption (runs moved) and
// makespan of the two failure-response policies.
func BenchmarkReschedulePolicies(b *testing.B) {
	nodes := make([]core.NodeInfo, 6)
	for i := range nodes {
		nodes[i] = core.NodeInfo{Name: fmt.Sprintf("fnode%02d", i+1), CPUs: 2, Speed: 1}
	}
	runs := make([]core.Run, 12)
	for i := range runs {
		runs[i] = core.Run{
			Name:     fmt.Sprintf("forecast-%02d", i+1),
			Work:     15000 + float64(i%7)*6000,
			Deadline: 86400,
			PrevNode: nodes[i%len(nodes)].Name,
		}
	}
	base, err := core.BuildSchedule(nodes, runs, core.ScheduleOptions{Heuristic: core.StayPut})
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []core.ReschedulePolicy{core.MinimalMove, core.FullReshuffle} {
		b.Run(pol.String(), func(b *testing.B) {
			var moved int
			var makespan float64
			for i := 0; i < b.N; i++ {
				after, err := core.RescheduleAfterFailure(base, "fnode01", pol, core.WorstFitDecreasing)
				if err != nil {
					b.Fatal(err)
				}
				moved = len(core.MovedRuns(base, after))
				makespan = after.Prediction.Makespan()
			}
			b.ReportMetric(float64(moved), "runs_moved")
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkRsyncInterval sweeps the rsync scan interval: coarser scans
// save scan overhead but delay data availability at the server.
func BenchmarkRsyncInterval(b *testing.B) {
	for _, interval := range []float64{60, 300, 900, 1800} {
		b.Run(fmt.Sprintf("%.0fs", interval), func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				res := dataflow.Run(dataflow.Architecture2, dataflow.Params{RsyncInterval: interval})
				end = res.EndToEnd
			}
			b.ReportMetric(end, "end_to_end_s")
		})
	}
}

// BenchmarkProductWorkers sweeps the master process's concurrency at a
// four-CPU server under a heavy (6×) product load: one worker can only
// use one CPU, so extra workers shorten the product tail. (On the paper's
// single-CPU server, workers change nothing — the CPU is the bottleneck —
// which is why this ablation pairs a bigger server with a bigger load.)
func BenchmarkProductWorkers(b *testing.B) {
	spec := forecast.ReplicateProducts(forecast.DataflowForecast(), 6)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				res := dataflow.Run(dataflow.Architecture2, dataflow.Params{
					Spec:       spec,
					Workers:    workers,
					ServerCPUs: 4,
				})
				end = res.EndToEnd
			}
			b.ReportMetric(end, "end_to_end_s")
		})
	}
}

// BenchmarkPartitionedProducts compares Architecture 3 (k secondary
// product nodes) against Architecture 2 at today's and 4× product loads —
// the §2.2 regime study.
func BenchmarkPartitionedProducts(b *testing.B) {
	heavy := forecast.ReplicateProducts(forecast.DataflowForecast(), 4)
	cases := []struct {
		name string
		run  func() dataflow.Result
	}{
		{"arch2-today", func() dataflow.Result { return dataflow.Run(dataflow.Architecture2, dataflow.Params{}) }},
		{"arch3-k4-today", func() dataflow.Result { return dataflow.RunPartitioned(dataflow.Params{}, 4) }},
		{"arch2-4x-load", func() dataflow.Result {
			return dataflow.Run(dataflow.Architecture2, dataflow.Params{Spec: heavy, Workers: 4})
		}},
		{"arch3-k4-4x-load", func() dataflow.Result {
			return dataflow.RunPartitioned(dataflow.Params{Spec: heavy, Workers: 4}, 4)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res dataflow.Result
			for i := 0; i < b.N; i++ {
				res = tc.run()
			}
			b.ReportMetric(res.RunWalltime, "run_walltime_s")
			b.ReportMetric(res.BytesOverLink/1e6, "MB_over_lan")
		})
	}
}

// BenchmarkOnDemandPolicies compares admission policies for made-to-order
// products (§5 future work): stock lateness and request latency.
func BenchmarkOnDemandPolicies(b *testing.B) {
	nodes := []core.NodeInfo{
		{Name: "n1", CPUs: 2, Speed: 1},
		{Name: "n2", CPUs: 2, Speed: 1},
	}
	stock := []core.Run{
		{Name: "s1", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s2", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s3", Work: 80000, Start: 3600, Deadline: 86400},
		{Name: "s4", Work: 80000, Start: 3600, Deadline: 86400},
	}
	assign := map[string]string{"s1": "n1", "s2": "n1", "s3": "n2", "s4": "n2"}
	var requests []ondemand.Request
	for i := 0; i < 8; i++ {
		requests = append(requests, ondemand.Request{
			ID:      fmt.Sprintf("r%d", i),
			Arrival: 18000 + float64(i)*2400,
			Work:    15000,
		})
	}
	for _, pol := range []ondemand.Policy{ondemand.GreedyPolicy{}, ondemand.DeadlineAwarePolicy{}} {
		b.Run(pol.String(), func(b *testing.B) {
			var res ondemand.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = ondemand.Run(ondemand.Config{
					Nodes: nodes, Stock: stock, Assign: assign,
					Requests: requests, Policy: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.StockLate)), "stock_late")
			b.ReportMetric(res.MeanLatency(), "mean_latency_s")
		})
	}
}

// paperScaleConfig builds the paper-scale campaign (10 forecasts, 6
// nodes) used by the campaign-cost and telemetry-overhead benchmarks.
func paperScaleConfig(days int, tel *telemetry.Telemetry) factory.Config {
	specs := []*forecast.Spec{
		forecast.Tillamook(),
		forecast.NewSpec("forecast-columbia", "columbia", 5760, 28000, 8),
		forecast.NewSpec("forecast-yaquina", "yaquina", 4320, 20000, 6),
		forecast.NewSpec("forecast-newport", "newport", 4320, 18000, 6),
		forecast.NewSpec("forecast-coos-bay", "coos-bay", 3600, 18000, 6),
		forecast.NewSpec("forecast-willapa", "willapa", 3600, 16000, 6),
		forecast.NewSpec("forecast-grays", "grays-harbor", 2880, 16000, 4),
		forecast.NewSpec("forecast-nehalem", "nehalem", 2880, 14000, 4),
		forecast.NewSpec("forecast-umpqua", "umpqua", 2880, 12000, 4),
		forecast.Dev(),
	}
	nodes := factory.DefaultNodes()
	assignments := make([]factory.Assignment, len(specs))
	for i, s := range specs {
		assignments[i] = factory.Assignment{Spec: s, Node: nodes[i%len(nodes)].Name}
	}
	return factory.Config{Days: days, Nodes: nodes, Forecasts: assignments, Telemetry: tel}
}

// runCampaign executes one campaign and returns nothing; shared by the
// benchmark and the overhead test.
func runCampaign(tb testing.TB, days int, tel *telemetry.Telemetry) {
	c, err := factory.New(paperScaleConfig(days, tel))
	if err != nil {
		tb.Fatal(err)
	}
	c.Run()
}

// BenchmarkCampaignDay measures the simulator's cost per factory day at
// the paper's scale (10 forecasts, 6 nodes).
func BenchmarkCampaignDay(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCampaign(b, 5, nil)
	}
	b.ReportMetric(5, "virtual_days")
}

// BenchmarkCampaignDayTelemetry measures the same campaign with full
// metric and span collection on; compare against BenchmarkCampaignDay for
// the exact overhead ratio on this machine.
func BenchmarkCampaignDayTelemetry(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCampaign(b, 5, telemetry.New())
	}
	b.ReportMetric(5, "virtual_days")
}

// TestTelemetryOverhead guards the design target that full collection
// (nil-safe cached instruments, one span per task) costs on the order of
// 5% of a campaign. The assertion uses best-of-N timings and a bound of
// 25% so a loaded CI machine doesn't flake the suite; run the two
// CampaignDay benchmarks for the precise ratio.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const rounds = 5
	best := func(tel func() *telemetry.Telemetry) time.Duration {
		min := time.Duration(math.MaxInt64)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			runCampaign(t, 3, tel())
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}
	// Interleave a warm-up of each variant so allocator state is comparable.
	runCampaign(t, 1, nil)
	runCampaign(t, 1, telemetry.New())

	baseline := best(func() *telemetry.Telemetry { return nil })
	instrumented := best(func() *telemetry.Telemetry { return telemetry.New() })
	ratio := float64(instrumented) / float64(baseline)
	t.Logf("baseline %v, instrumented %v, ratio %.3f", baseline, instrumented, ratio)
	if ratio > 1.25 {
		t.Fatalf("telemetry overhead ratio %.3f exceeds bound 1.25 (baseline %v, instrumented %v)",
			ratio, baseline, instrumented)
	}
}
